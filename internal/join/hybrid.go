package join

import (
	"context"
	"math"

	"mmdb/internal/exec"
	"mmdb/internal/hashjoin"
	"mmdb/internal/heap"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// hybridHash is the paper's new Hybrid hash join (§3.7). On the first pass
// it keeps a hash table for the fraction q = |R0|/|R| of R that fits in
// the memory left over after reserving B output buffer pages, and streams
// S through it, so only the (1-q) remainder of both relations touches disk.
// The disk partitions are then joined pairwise like GRACE buckets.
//
// B is the smallest partition count such that every non-resident partition
// of R later fits in memory: B = ceil((|R|*F - |M|) / (|M| - 1)).
// When B == 1 partition-buffer flushes are sequential rather than random,
// which reproduces the cost discontinuity the paper notes at
// |M| = |R|*F/2 in Figure 1.
func hybridHash(spec Spec, emit Emit, res *Result) error {
	disk := spec.R.Disk()
	clock := disk.Clock()
	rSchema, sSchema := spec.R.Schema(), spec.S.Schema()
	prefix := tmpPrefix(HybridHash)

	rf := float64(spec.R.NumPages()) * spec.F
	m := float64(spec.M)

	if rf <= m {
		// Degenerate case: all of R fits; hybrid == one-pass simple hash.
		res.Passes = 1
		if spec.LiveM != nil {
			// A live grant can be revoked mid-build; the revocable path is
			// serial so the spill decision is a plain sequential check.
			return residentJoinLive(spec, emit, res)
		}
		if spec.workers() > 1 {
			return residentJoinParallel(spec, emit)
		}
		hasher := spec.newHasher(clock, 0)
		table := spec.newTable(clock, rSchema, spec.RCol, int(spec.R.NumTuples()))
		err := spec.R.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
			table.Insert(hasher.Hash(rSchema.KeyBytes(t, spec.RCol)), t.Clone())
			return true
		})
		if err != nil {
			return err
		}
		pr := newProber(table, func(t tuple.Tuple) []byte { return sSchema.KeyBytes(t, spec.SCol) },
			func(s, r tuple.Tuple) { emit(r, s) })
		err = spec.S.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
			pr.add(hasher.Hash(sSchema.KeyBytes(t, spec.SCol)), t)
			return true
		})
		if err != nil {
			return err
		}
		pr.flush()
		return nil
	}

	// The paper's minimum is B = ceil((|R|F - |M|)/(|M|-1)), which makes
	// every partition exactly fill memory; real hash splits have variance
	// ("if we err slightly we can always apply the hybrid hash join
	// recursively", §3.3), so size partitions to ~80% of memory by default
	// and avoid the extra pass. Spec.HybridSkew=1 restores the paper's
	// exact formula (the ablation experiment measures the difference).
	skew := spec.HybridSkew
	if skew == 0 {
		skew = 1.25
	}
	b := int(math.Ceil(skew * (rf - m) / (m - 1)))
	if b < 1 {
		b = 1
	}
	if b > spec.M-1 {
		// Memory below sqrt(|R|*F): partitions will overflow and recurse.
		b = spec.M - 1
	}
	res.Partitions = b
	res.Passes = 2

	// q is the fraction of R handled entirely in memory (§3.7).
	q := (m - float64(b)) / rf
	if q < 0 {
		q = 0
	}
	weights := make([]float64, b+1)
	weights[0] = q
	for i := 1; i <= b; i++ {
		weights[i] = (1 - q) / float64(b)
	}
	splitter, err := hashjoin.NewSplitter(weights)
	if err != nil {
		return err
	}
	hasher := spec.newHasher(clock, 0)

	flush := simio.Rand
	if b == 1 {
		// One output buffer: flushes are sequential (the paper's footnote
		// on the IOseq/IOrand switch at 0.5 on the Figure 1 axis).
		flush = simio.Seq
	}

	// Step 1: scan R. R0 builds the in-memory table; R1..RB go to disk.
	// Under a live grant the build set is also tracked in `kept` (sharing
	// the cloned tuples, not copying them) so a mid-query revocation can
	// spill the resident partition to disk and degrade to pure GRACE.
	resident := int(q*float64(spec.R.NumTuples())) + 1
	table := spec.newTable(clock, rSchema, spec.RCol, resident)
	var kept []hashjoin.Keyed
	var spillR, spillS *heap.File
	perPage := float64(spec.R.TuplesPerPage())
	shrunk := func() bool {
		if spec.LiveM == nil {
			return false
		}
		need := int(math.Ceil(float64(len(kept))*spec.F/perPage)) + b
		return need > spec.liveM()
	}
	spill := func() error {
		res.GraceFallback = true
		var err error
		if spillR, err = heap.Create(disk, prefix+".fb.r", rSchema); err != nil {
			return err
		}
		if spillS, err = heap.Create(disk, prefix+".fb.s", sSchema); err != nil {
			return err
		}
		clock.Moves(int64(len(kept)))
		for _, k := range kept {
			if err := spillR.Append(k.Tuple, simio.Seq); err != nil {
				return err
			}
		}
		kept, table = nil, nil
		return nil
	}
	rPart, err := hashjoin.NewPartitioner(disk, clock, rSchema, prefix+".r", b, flush)
	if err != nil {
		return err
	}
	scanErr := spec.R.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		h := hasher.Hash(rSchema.KeyBytes(t, spec.RCol))
		if p := splitter.Partition(h); p == 0 {
			if table == nil {
				clock.Moves(1)
				err = spillR.Append(t.Clone(), simio.Seq)
				return err == nil
			}
			c := t.Clone()
			table.Insert(h, c)
			if spec.LiveM != nil {
				kept = append(kept, hashjoin.Keyed{Hash: h, Tuple: c})
				if shrunk() {
					err = spill()
				}
			}
		} else {
			err = rPart.Add(p-1, t)
		}
		return err == nil
	})
	if scanErr != nil {
		return scanErr
	}
	if err != nil {
		return err
	}
	rParts, err := rPart.Close()
	if err != nil {
		return err
	}

	// Step 2: scan S. S0 probes the resident table immediately; S1..SB go
	// to disk. If the grant was (or gets) revoked, S0 is spilled instead
	// and joins its R counterpart in the bucket phase — every S0 tuple is
	// matched exactly once either way.
	sPart, err := hashjoin.NewPartitioner(disk, clock, sSchema, prefix+".s", b, flush)
	if err != nil {
		return err
	}
	pr := newProber(table, func(t tuple.Tuple) []byte { return sSchema.KeyBytes(t, spec.SCol) },
		func(s, r tuple.Tuple) { emit(r, s) })
	scanErr = spec.S.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		key := sSchema.KeyBytes(t, spec.SCol)
		h := hasher.Hash(key)
		if p := splitter.Partition(h); p == 0 {
			if table != nil && shrunk() {
				// The revocation point is per-tuple exactly as in the
				// unbatched loop; pending probes were admitted before the
				// grant shrank and must surface before the table goes away.
				pr.flush()
				if err = spill(); err != nil {
					return false
				}
			}
			if table == nil {
				clock.Moves(1)
				err = spillS.Append(t.Clone(), simio.Seq)
				return err == nil
			}
			pr.add(h, t)
		} else {
			err = sPart.Add(p-1, t)
		}
		return err == nil
	})
	if scanErr != nil {
		return scanErr
	}
	if err != nil {
		return err
	}
	pr.flush()
	sParts, err := sPart.Close()
	if err != nil {
		return err
	}
	table, kept = nil, nil // release R0 before the bucket joins
	if spillR != nil {
		if err := spillR.Flush(simio.Seq); err != nil {
			return err
		}
		if err := spillS.Flush(simio.Seq); err != nil {
			return err
		}
		rParts = append(rParts, hashjoin.PartitionResult{File: spillR, Tuples: spillR.NumTuples()})
		sParts = append(sParts, hashjoin.PartitionResult{File: spillS, Tuples: spillS.NumTuples()})
	}

	// Steps 3–4: join the disk partitions pairwise. Like GRACE buckets,
	// the pairs are independent and fan out across the worker pool.
	return joinPartitionPairs(exec.NewPool(spec.Parallelism), context.Background(), spec, rParts, sParts, emit, res)
}

// residentJoinLive is hybrid's degenerate all-of-R-resident case under a
// live memory grant: it builds and probes like the serial path, but tracks
// the build set so a mid-query grant revocation can spill it to disk and
// finish as a single GRACE bucket pair instead of failing.
func residentJoinLive(spec Spec, emit Emit, res *Result) error {
	disk := spec.R.Disk()
	clock := disk.Clock()
	rSchema, sSchema := spec.R.Schema(), spec.S.Schema()
	prefix := tmpPrefix(HybridHash)
	hasher := spec.newHasher(clock, 0)
	perPage := float64(spec.R.TuplesPerPage())

	// Kernel layout for the table, but tuple-at-a-time probing: this path
	// exists to observe a live grant at every tuple boundary, and batching
	// would only defer matches across the boundary being tested.
	table := spec.newTable(clock, rSchema, spec.RCol, int(spec.R.NumTuples()))
	var kept []hashjoin.Keyed
	var spillR, spillS *heap.File
	shrunk := func() bool {
		need := int(math.Ceil(float64(len(kept)) * spec.F / perPage))
		return need > spec.liveM()
	}
	spill := func() error {
		res.GraceFallback = true
		var err error
		if spillR, err = heap.Create(disk, prefix+".fb.r", rSchema); err != nil {
			return err
		}
		if spillS, err = heap.Create(disk, prefix+".fb.s", sSchema); err != nil {
			return err
		}
		clock.Moves(int64(len(kept)))
		for _, k := range kept {
			if err := spillR.Append(k.Tuple, simio.Seq); err != nil {
				return err
			}
		}
		kept, table = nil, nil
		return nil
	}

	var err error
	scanErr := spec.R.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		if table == nil {
			clock.Moves(1)
			err = spillR.Append(t.Clone(), simio.Seq)
			return err == nil
		}
		h := hasher.Hash(rSchema.KeyBytes(t, spec.RCol))
		c := t.Clone()
		table.Insert(h, c)
		kept = append(kept, hashjoin.Keyed{Hash: h, Tuple: c})
		if shrunk() {
			err = spill()
		}
		return err == nil
	})
	if scanErr != nil {
		return scanErr
	}
	if err != nil {
		return err
	}
	scanErr = spec.S.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		if table != nil && shrunk() {
			if err = spill(); err != nil {
				return false
			}
		}
		if table == nil {
			clock.Moves(1)
			err = spillS.Append(t.Clone(), simio.Seq)
			return err == nil
		}
		key := sSchema.KeyBytes(t, spec.SCol)
		table.Probe(hasher.Hash(key), key, func(r tuple.Tuple) {
			emit(r, t)
		})
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	if err != nil {
		return err
	}
	if spillR == nil {
		return nil
	}
	if err := spillR.Flush(simio.Seq); err != nil {
		return err
	}
	if err := spillS.Flush(simio.Seq); err != nil {
		return err
	}
	res.Passes = 2
	return joinPartitionPair(spec, spillR, spillS, 1, emit, res)
}

// residentJoinParallel is the all-of-R-resident case with build and probe
// fanned out over hash shards: the scans stay sequential (hashing is
// charged per tuple on the scanning goroutine, as in the serial path), and
// the tuple moves into the table and the probe comparisons — the CPU terms
// that dominate when no partition IO happens — run on one worker per
// shard. ShardedTable routes by hash bits disjoint from the bucket bits,
// so the counters tally exactly as in the single-table serial run.
func residentJoinParallel(spec Spec, emit Emit) error {
	clock := spec.R.Disk().Clock()
	rSchema, sSchema := spec.R.Schema(), spec.S.Schema()
	hasher := spec.newHasher(clock, 0)
	workers := spec.workers()
	var table *hashjoin.ShardedTable
	if spec.kernels() {
		table = hashjoin.NewShardedKernelTable(clock, rSchema, spec.RCol, int(spec.R.NumTuples()), workers)
	} else {
		table = hashjoin.NewShardedTable(clock, rSchema, spec.RCol, int(spec.R.NumTuples()), workers)
	}
	ns := table.NumShards()
	pool := exec.NewPool(workers)
	ctx := context.Background()

	build := make([][]hashjoin.Keyed, ns)
	err := spec.R.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		h := hasher.Hash(rSchema.KeyBytes(t, spec.RCol))
		s := table.ShardOf(h)
		build[s] = append(build[s], hashjoin.Keyed{Hash: h, Tuple: t.Clone()})
		return true
	})
	if err != nil {
		return err
	}
	err = pool.ForEach(ctx, ns, func(_ context.Context, i int) error {
		shard := table.Shard(i)
		for _, k := range build[i] {
			shard.Insert(k.Hash, k.Tuple)
		}
		build[i] = nil
		return nil
	})
	if err != nil {
		return err
	}

	probe := make([][]hashjoin.Keyed, ns)
	err = spec.S.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		h := hasher.Hash(sSchema.KeyBytes(t, spec.SCol))
		s := table.ShardOf(h)
		probe[s] = append(probe[s], hashjoin.Keyed{Hash: h, Tuple: t.Clone()})
		return true
	})
	if err != nil {
		return err
	}
	return pool.ForEach(ctx, ns, func(_ context.Context, i int) error {
		// Each shard's probes are already clustered by hash; sweep them in
		// kernel-sized batches so the shard's sub-tables stay cache-warm.
		// The scratch buffers live per shard table, so shards batch
		// concurrently without sharing state.
		if kt := table.KernelShard(i); kt != nil {
			keyOf := func(t tuple.Tuple) []byte { return sSchema.KeyBytes(t, spec.SCol) }
			bs := kt.BatchSize()
			for lo := 0; lo < len(probe[i]); lo += bs {
				hi := lo + bs
				if hi > len(probe[i]) {
					hi = len(probe[i])
				}
				batch := probe[i][lo:hi]
				kt.ProbeBatch(batch, keyOf, func(j int, r tuple.Tuple) {
					emit(r, batch[j].Tuple)
				})
			}
			probe[i] = nil
			return nil
		}
		shard := table.Shard(i)
		for _, k := range probe[i] {
			key := sSchema.KeyBytes(k.Tuple, spec.SCol)
			shard.Probe(k.Hash, key, func(r tuple.Tuple) {
				emit(r, k.Tuple)
			})
		}
		probe[i] = nil
		return nil
	})
}
