package join

import (
	"context"
	"math"

	"mmdb/internal/exec"
	"mmdb/internal/hashjoin"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// hybridHash is the paper's new Hybrid hash join (§3.7). On the first pass
// it keeps a hash table for the fraction q = |R0|/|R| of R that fits in
// the memory left over after reserving B output buffer pages, and streams
// S through it, so only the (1-q) remainder of both relations touches disk.
// The disk partitions are then joined pairwise like GRACE buckets.
//
// B is the smallest partition count such that every non-resident partition
// of R later fits in memory: B = ceil((|R|*F - |M|) / (|M| - 1)).
// When B == 1 partition-buffer flushes are sequential rather than random,
// which reproduces the cost discontinuity the paper notes at
// |M| = |R|*F/2 in Figure 1.
func hybridHash(spec Spec, emit Emit, res *Result) error {
	disk := spec.R.Disk()
	clock := disk.Clock()
	rSchema, sSchema := spec.R.Schema(), spec.S.Schema()
	prefix := tmpPrefix(HybridHash)

	rf := float64(spec.R.NumPages()) * spec.F
	m := float64(spec.M)

	if rf <= m {
		// Degenerate case: all of R fits; hybrid == one-pass simple hash.
		res.Passes = 1
		if spec.workers() > 1 {
			return residentJoinParallel(spec, emit)
		}
		hasher := hashjoin.NewHasher(clock, 0)
		table := hashjoin.NewTable(clock, rSchema, spec.RCol, int(spec.R.NumTuples()))
		err := spec.R.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
			table.Insert(hasher.Hash(rSchema.KeyBytes(t, spec.RCol)), t.Clone())
			return true
		})
		if err != nil {
			return err
		}
		return spec.S.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
			key := sSchema.KeyBytes(t, spec.SCol)
			table.Probe(hasher.Hash(key), key, func(r tuple.Tuple) {
				emit(r, t)
			})
			return true
		})
	}

	// The paper's minimum is B = ceil((|R|F - |M|)/(|M|-1)), which makes
	// every partition exactly fill memory; real hash splits have variance
	// ("if we err slightly we can always apply the hybrid hash join
	// recursively", §3.3), so size partitions to ~80% of memory by default
	// and avoid the extra pass. Spec.HybridSkew=1 restores the paper's
	// exact formula (the ablation experiment measures the difference).
	skew := spec.HybridSkew
	if skew == 0 {
		skew = 1.25
	}
	b := int(math.Ceil(skew * (rf - m) / (m - 1)))
	if b < 1 {
		b = 1
	}
	if b > spec.M-1 {
		// Memory below sqrt(|R|*F): partitions will overflow and recurse.
		b = spec.M - 1
	}
	res.Partitions = b
	res.Passes = 2

	// q is the fraction of R handled entirely in memory (§3.7).
	q := (m - float64(b)) / rf
	if q < 0 {
		q = 0
	}
	weights := make([]float64, b+1)
	weights[0] = q
	for i := 1; i <= b; i++ {
		weights[i] = (1 - q) / float64(b)
	}
	splitter, err := hashjoin.NewSplitter(weights)
	if err != nil {
		return err
	}
	hasher := hashjoin.NewHasher(clock, 0)

	flush := simio.Rand
	if b == 1 {
		// One output buffer: flushes are sequential (the paper's footnote
		// on the IOseq/IOrand switch at 0.5 on the Figure 1 axis).
		flush = simio.Seq
	}

	// Step 1: scan R. R0 builds the in-memory table; R1..RB go to disk.
	resident := int(q*float64(spec.R.NumTuples())) + 1
	table := hashjoin.NewTable(clock, rSchema, spec.RCol, resident)
	rPart, err := hashjoin.NewPartitioner(disk, clock, rSchema, prefix+".r", b, flush)
	if err != nil {
		return err
	}
	scanErr := spec.R.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		h := hasher.Hash(rSchema.KeyBytes(t, spec.RCol))
		if p := splitter.Partition(h); p == 0 {
			table.Insert(h, t.Clone())
		} else {
			err = rPart.Add(p-1, t)
		}
		return err == nil
	})
	if scanErr != nil {
		return scanErr
	}
	if err != nil {
		return err
	}
	rParts, err := rPart.Close()
	if err != nil {
		return err
	}

	// Step 2: scan S. S0 probes the resident table immediately; S1..SB go
	// to disk.
	sPart, err := hashjoin.NewPartitioner(disk, clock, sSchema, prefix+".s", b, flush)
	if err != nil {
		return err
	}
	scanErr = spec.S.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		key := sSchema.KeyBytes(t, spec.SCol)
		h := hasher.Hash(key)
		if p := splitter.Partition(h); p == 0 {
			table.Probe(h, key, func(r tuple.Tuple) {
				emit(r, t)
			})
		} else {
			err = sPart.Add(p-1, t)
		}
		return err == nil
	})
	if scanErr != nil {
		return scanErr
	}
	if err != nil {
		return err
	}
	sParts, err := sPart.Close()
	if err != nil {
		return err
	}
	table = nil // release R0 before the bucket joins

	// Steps 3–4: join the disk partitions pairwise. Like GRACE buckets,
	// the pairs are independent and fan out across the worker pool.
	return joinPartitionPairs(exec.NewPool(spec.Parallelism), context.Background(), spec, rParts, sParts, emit, res)
}

// residentJoinParallel is the all-of-R-resident case with build and probe
// fanned out over hash shards: the scans stay sequential (hashing is
// charged per tuple on the scanning goroutine, as in the serial path), and
// the tuple moves into the table and the probe comparisons — the CPU terms
// that dominate when no partition IO happens — run on one worker per
// shard. ShardedTable routes by hash bits disjoint from the bucket bits,
// so the counters tally exactly as in the single-table serial run.
func residentJoinParallel(spec Spec, emit Emit) error {
	clock := spec.R.Disk().Clock()
	rSchema, sSchema := spec.R.Schema(), spec.S.Schema()
	hasher := hashjoin.NewHasher(clock, 0)
	workers := spec.workers()
	table := hashjoin.NewShardedTable(clock, rSchema, spec.RCol, int(spec.R.NumTuples()), workers)
	ns := table.NumShards()
	pool := exec.NewPool(workers)
	ctx := context.Background()

	build := make([][]hashjoin.Keyed, ns)
	err := spec.R.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		h := hasher.Hash(rSchema.KeyBytes(t, spec.RCol))
		s := table.ShardOf(h)
		build[s] = append(build[s], hashjoin.Keyed{Hash: h, Tuple: t.Clone()})
		return true
	})
	if err != nil {
		return err
	}
	err = pool.ForEach(ctx, ns, func(_ context.Context, i int) error {
		shard := table.Shard(i)
		for _, k := range build[i] {
			shard.Insert(k.Hash, k.Tuple)
		}
		build[i] = nil
		return nil
	})
	if err != nil {
		return err
	}

	probe := make([][]hashjoin.Keyed, ns)
	err = spec.S.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		h := hasher.Hash(sSchema.KeyBytes(t, spec.SCol))
		s := table.ShardOf(h)
		probe[s] = append(probe[s], hashjoin.Keyed{Hash: h, Tuple: t.Clone()})
		return true
	})
	if err != nil {
		return err
	}
	return pool.ForEach(ctx, ns, func(_ context.Context, i int) error {
		shard := table.Shard(i)
		for _, k := range probe[i] {
			key := sSchema.KeyBytes(k.Tuple, spec.SCol)
			shard.Probe(k.Hash, key, func(r tuple.Tuple) {
				emit(r, k.Tuple)
			})
		}
		probe[i] = nil
		return nil
	})
}
