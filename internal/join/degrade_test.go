package join

import (
	"fmt"
	"sync/atomic"
	"testing"

	"mmdb/internal/tuple"
)

// revocableGrant simulates the session broker shrinking a grant mid-query:
// it reports full pages for the first `after` consultations, then the
// shrunken value.
type revocableGrant struct {
	full, shrunken int
	after          int64
	calls          atomic.Int64
}

func (g *revocableGrant) pages() int {
	if g.calls.Add(1) > g.after {
		return g.shrunken
	}
	return g.full
}

// TestGrantRevocationFallsBackToGrace revokes hybrid hash's memory grant
// mid-build on the two-pass path and asserts the join completes via the
// GRACE spill fallback with the exact oracle result.
func TestGrantRevocationFallsBackToGrace(t *testing.T) {
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", 400, 100, 41)
	s := makeRelation(t, disk, "S", 400, 100, 42)
	// M=12 keeps a real resident partition (q ≈ 20%, ~80 tuples) while
	// still forcing the two-pass path (|R|F ≈ 41 pages).
	base := Spec{R: r, S: s, M: 12}
	want, _ := matches(t, NestedLoops, base)

	// The grant is consulted once per resident insert — revoke it twenty
	// inserts into the build.
	grant := &revocableGrant{full: 12, shrunken: 2, after: 20}
	spec := base
	spec.LiveM = grant.pages
	got, res := matches(t, HybridHash, spec)
	if !res.GraceFallback {
		t.Fatal("revoked grant did not trigger the GRACE fallback")
	}
	if !sameMultiset(got, want) {
		t.Fatal("fallback produced a wrong result")
	}
}

// TestGrantRevocationDegenerateAllResident revokes the grant on the
// degenerate all-of-R-resident path (rf <= m), where the fallback spills
// the whole build side as a single bucket pair.
func TestGrantRevocationDegenerateAllResident(t *testing.T) {
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", 200, 60, 43)
	s := makeRelation(t, disk, "S", 200, 60, 44)
	base := Spec{R: r, S: s, M: 200} // all of R fits
	want, _ := matches(t, NestedLoops, base)

	grant := &revocableGrant{full: 200, shrunken: 2, after: 40}
	spec := base
	spec.LiveM = grant.pages
	got, res := matches(t, HybridHash, spec)
	if !res.GraceFallback {
		t.Fatal("revoked grant did not trigger the fallback on the resident path")
	}
	if res.Passes < 2 {
		t.Fatalf("fallback must add a disk pass, got %d", res.Passes)
	}
	if !sameMultiset(got, want) {
		t.Fatal("fallback produced a wrong result")
	}
}

// TestStableGrantDoesNotFallBack wires a live grant that never shrinks:
// the result must match the grant-less run and no fallback may trigger.
func TestStableGrantDoesNotFallBack(t *testing.T) {
	for _, m := range []int{5, 200} {
		disk, _ := testEnv()
		r := makeRelation(t, disk, "R", 300, 80, 45)
		s := makeRelation(t, disk, "S", 300, 80, 46)
		base := Spec{R: r, S: s, M: m}
		want, _ := matches(t, HybridHash, base)

		spec := base
		spec.LiveM = func() int { return m }
		got, res := matches(t, HybridHash, spec)
		if res.GraceFallback {
			t.Fatalf("M=%d: stable grant triggered a fallback", m)
		}
		if !sameMultiset(got, want) {
			t.Fatalf("M=%d: live-grant run diverged from the static run", m)
		}
	}
}

// TestRevocationDuringProbePhase shrinks the grant only once probing has
// begun (detected by the first emitted match, which can only come from the
// resident table during the S scan): already-probed S tuples matched the
// full table, the rest must flow through the spilled pair exactly once.
func TestRevocationDuringProbePhase(t *testing.T) {
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", 400, 100, 47)
	s := makeRelation(t, disk, "S", 400, 100, 48)
	base := Spec{R: r, S: s, M: 12}
	want, _ := matches(t, NestedLoops, base)

	var probing atomic.Bool
	spec := base
	spec.LiveM = func() int {
		if probing.Load() {
			return 2
		}
		return 12
	}
	got := make(map[string]int)
	res, err := Run(HybridHash, spec, func(r, s tuple.Tuple) {
		got[fmt.Sprintf("%x|%x", []byte(r), []byte(s))]++
		probing.Store(true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.GraceFallback {
		t.Skip("no partition-0 probe followed the first match at this geometry")
	}
	if !sameMultiset(got, want) {
		t.Fatal("probe-phase fallback produced a wrong result")
	}
}
