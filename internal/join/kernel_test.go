package join

import (
	"fmt"
	"testing"

	"mmdb/internal/cost"
	"mmdb/internal/tuple"
)

// runKernelCase executes one join with the given kernel setting on a fresh
// disk, returning the ordered emission sequence, the match multiset, the
// result, and the full clock counters.
func runKernelCase(t *testing.T, a Algorithm, width int, noKernel bool, mutate func(*Spec)) ([]string, map[string]int, Result, cost.Counters) {
	t.Helper()
	disk, clock := testEnv()
	r := makeRelation(t, disk, "R", 600, 150, 77)
	s := makeRelation(t, disk, "S", 900, 150, 78)
	spec := Spec{R: r, S: s, M: 12, Parallelism: width, NoCacheKernels: noKernel}
	if mutate != nil {
		mutate(&spec)
	}
	var seq []string
	got := make(map[string]int)
	res, err := Run(a, spec, func(r, s tuple.Tuple) {
		p := fmt.Sprintf("%x|%x", []byte(r), []byte(s))
		seq = append(seq, p)
		got[p]++
	})
	if err != nil {
		t.Fatalf("%v kernel=%v width=%d: %v", a, !noKernel, width, err)
	}
	return seq, got, res, clock.Counters()
}

// TestRadixKernelJoinsIdentical is the join half of the cachelab invariant
// at unit level: with the plan knobs fixed, the cache-conscious kernels
// must charge bit-identical counters and produce the same matches as the
// classic layout at every schedule width — and at width 1, the exact same
// emission sequence.
func TestRadixKernelJoinsIdentical(t *testing.T) {
	algos := []struct {
		a      Algorithm
		mutate func(*Spec)
	}{
		{SimpleHash, nil},
		{GraceHash, nil},
		{HybridHash, nil},
		{HybridHash, func(s *Spec) { s.M = 300 }}, // degenerate all-resident path
		{SortMerge, func(s *Spec) { s.SortChunks = 4 }},
	}
	for ai, tc := range algos {
		for _, width := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("%v.%d/width=%d", tc.a, ai, width)
			t.Run(name, func(t *testing.T) {
				onSeq, onSet, onRes, onC := runKernelCase(t, tc.a, width, false, tc.mutate)
				offSeq, offSet, offRes, offC := runKernelCase(t, tc.a, width, true, tc.mutate)
				if onC != offC {
					t.Errorf("counters diverge:\nkernel on  %+v\nkernel off %+v", onC, offC)
				}
				if onRes.Matches != offRes.Matches {
					t.Errorf("matches diverge: %d vs %d", onRes.Matches, offRes.Matches)
				}
				if !sameMultiset(onSet, offSet) {
					t.Error("match multisets diverge")
				}
				if width == 1 {
					for i := range onSeq {
						if onSeq[i] != offSeq[i] {
							t.Fatalf("emission order diverges at %d", i)
						}
					}
				}
			})
		}
	}
}

// TestRadixKernelDegradeIdentical revokes hybrid's memory grant mid-build
// (deterministically, by consultation count — identical in both layouts)
// and requires the batched-probe path to spill at the same tuple boundary:
// same GRACE fallback, same matches, bit-identical counters, and at width
// 1 the same emission order.
func TestRadixKernelDegradeIdentical(t *testing.T) {
	for _, width := range []int{1, 4} {
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			run := func(noKernel bool) ([]string, map[string]int, Result, cost.Counters) {
				grant := &revocableGrant{full: 12, shrunken: 2, after: 20}
				return runKernelCase(t, HybridHash, width, noKernel, func(s *Spec) {
					s.LiveM = grant.pages
				})
			}
			onSeq, onSet, onRes, onC := run(false)
			offSeq, offSet, offRes, offC := run(true)
			if !onRes.GraceFallback || !offRes.GraceFallback {
				t.Fatalf("expected both layouts to fall back: on=%v off=%v",
					onRes.GraceFallback, offRes.GraceFallback)
			}
			if onC != offC {
				t.Errorf("counters diverge:\nkernel on  %+v\nkernel off %+v", onC, offC)
			}
			if !sameMultiset(onSet, offSet) {
				t.Error("match multisets diverge")
			}
			if width == 1 {
				if len(onSeq) != len(offSeq) {
					t.Fatalf("emission lengths diverge: %d vs %d", len(onSeq), len(offSeq))
				}
				for i := range onSeq {
					if onSeq[i] != offSeq[i] {
						t.Fatalf("emission order diverges at %d", i)
					}
				}
			}
		})
	}
}

// TestRadixKernelMatchesOracle runs the full oracle check with kernels
// explicitly on, across plan shapes that force recursion and chunked
// fallbacks, so the batched probe path is validated against nested loops
// and not just against the classic layout.
func TestRadixKernelMatchesOracle(t *testing.T) {
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", 500, 40, 79) // heavy duplicates
	s := makeRelation(t, disk, "S", 700, 40, 80)
	for _, m := range []int{4, 12, 300} {
		checkAgainstOracle(t, Spec{R: r, S: s, M: m})
	}
}
