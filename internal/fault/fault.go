// Package fault is the engine's deterministic fault plane: a seeded
// injector that simio disks consult on every charged IO and wal devices
// consult on every page write, driving per-device/per-space schedules of
// transient errors (succeed on retry), permanent device failures, latency
// stalls, and torn log-page writes.
//
// The injector is one mechanism for every fault kind, so a chaos harness
// can compose a hostile storage profile in a few lines:
//
//	inj := fault.NewInjector(seed).
//		TransientEvery("", 50).     // every 50th IO fails once, anywhere
//		StallEvery("accounts", 10, 3).
//		TornEvery("log0", 7)        // the 7th page write to log0 tears
//	disk.SetInjector(inj)
//	logDev.Injector = inj
//
// Errors satisfy errors.Is against both the fault taxonomy
// (ErrTransient/ErrPermanent) and the underlying simio.ErrInjected, so
// pre-existing callers that only know about injected failures keep
// working while retry loops can distinguish what is worth retrying.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"mmdb/internal/cost"
	"mmdb/internal/simio"
	"mmdb/internal/wal"
)

// ErrTransient marks an injected fault that models a transient device
// error: the same operation succeeds if retried. It wraps
// simio.ErrInjected.
var ErrTransient = fmt.Errorf("fault: transient device error: %w", simio.ErrInjected)

// ErrPermanent marks an injected fault that models a permanent device
// failure: retrying cannot help. It wraps simio.ErrInjected.
var ErrPermanent = fmt.Errorf("fault: permanent device failure: %w", simio.ErrInjected)

// DefaultRetries bounds Retry's attempts when the caller passes 0.
const DefaultRetries = 4

// Retry runs op, retrying transient injected faults up to `retries` times
// (0 means DefaultRetries) with exponential backoff charged to clock as
// sequential-IO delay — virtual time, like every other cost in the
// engine. Any error that is not ErrTransient (permanent faults, plain
// injected failures, real errors) is returned immediately: retrying a
// dead device only burns time.
func Retry(clock *cost.Clock, retries int, op func() error) error {
	if retries <= 0 {
		retries = DefaultRetries
	}
	var err error
	for i := 0; ; i++ {
		err = op()
		if err == nil || !errors.Is(err, ErrTransient) || i >= retries {
			return err
		}
		if clock != nil {
			clock.SeqIOs(1 << uint(i)) // backoff before the re-issue
		}
	}
}

// ruleKind classifies one schedule entry.
type ruleKind int

const (
	transientRule ruleKind = iota
	permanentRule
	stallRule
	tornRule
)

// rule is one scheduled fault: a scope (space/device name, prefix match,
// "" = everything), a trigger (every n-th consultation, or a seeded
// probability), and the fault to inject.
type rule struct {
	scope string
	kind  ruleKind
	every int64   // fire when count%every == 0 (if > 0)
	prob  float64 // else fire with this probability (per-rule seeded rng)
	after int64   // permanentRule: fire on every consultation past this
	burst int     // transientRule: consecutive failures per firing
	extra int64   // stallRule: extra IOs / service times charged
	bytes int     // tornRule: surviving prefix length (0 = half)

	rng   *rand.Rand
	count int64 // consultations within scope
	left  int   // remaining failures of the current transient burst
}

func (r *rule) matches(name string) bool {
	return r.scope == "" || name == r.scope || strings.HasPrefix(name, r.scope)
}

// fires advances the rule's trigger state for one consultation.
func (r *rule) fires() bool {
	r.count++
	if r.every > 0 {
		return r.count%r.every == 0
	}
	if r.after > 0 && r.kind != permanentRule {
		return r.count == r.after // one-shot
	}
	if r.prob > 0 {
		return r.rng.Float64() < r.prob
	}
	return false
}

// Stats counts injector activity.
type Stats struct {
	Consulted  int64 // charged IOs the injector saw
	PageWrites int64 // wal device page writes the injector saw
	Transient  int64 // transient faults injected
	Permanent  int64 // permanent faults injected
	Stalled    int64 // extra IOs / service times injected as latency
	Torn       int64 // torn page writes injected
}

// Injector is a deterministic, seeded schedule of storage faults. It
// implements both simio.Injector (charged IOs on simulated disks) and
// wal.WriteInjector (log/checkpoint device page writes). The zero scope
// "" matches every space or device; otherwise a rule applies to names
// equal to or prefixed by its scope (spill files are named
// hierarchically, so a prefix targets a whole family).
//
// All schedule builders return the injector for chaining and must be
// called before the injector is armed. Consultation is safe for
// concurrent use; determinism under parallel workers holds per-scope as
// long as the scope's IOs are issued by one goroutine (the chaos harness
// runs serial plans for bit-identical verdicts).
type Injector struct {
	mu    sync.Mutex
	seed  int64
	rules []*rule
	stats Stats
}

// NewInjector creates an injector whose probabilistic rules draw from
// streams seeded by seed: same seed, same schedule, same verdicts.
func NewInjector(seed int64) *Injector {
	return &Injector{seed: seed}
}

func (in *Injector) add(r *rule) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	r.rng = rand.New(rand.NewSource(in.seed + int64(len(in.rules))*0x9e3779b9))
	in.rules = append(in.rules, r)
	return in
}

// TransientEvery schedules a single transient failure on every n-th
// charged IO (or page write) within scope.
func (in *Injector) TransientEvery(scope string, n int64) *Injector {
	return in.add(&rule{scope: scope, kind: transientRule, every: n, burst: 1})
}

// TransientBurst is TransientEvery but each firing fails `burst`
// consecutive operations — enough bursts exhaust a bounded retry loop.
func (in *Injector) TransientBurst(scope string, n int64, burst int) *Injector {
	if burst < 1 {
		burst = 1
	}
	return in.add(&rule{scope: scope, kind: transientRule, every: n, burst: burst})
}

// TransientAt schedules exactly one transient burst: the at-th operation
// within scope (1-based) fails, as do the burst-1 matching operations
// after it, and the rule never fires again. A burst longer than the write
// path's bounded retry kills the query transiently while guaranteeing a
// later attempt out-runs the fault — the schedule for testing
// session-level query retry.
func (in *Injector) TransientAt(scope string, at int64, burst int) *Injector {
	if at < 1 {
		at = 1
	}
	if burst < 1 {
		burst = 1
	}
	return in.add(&rule{scope: scope, kind: transientRule, after: at, burst: burst})
}

// TransientProb schedules transient failures with probability p per
// operation, drawn from a per-rule stream seeded by the injector seed.
func (in *Injector) TransientProb(scope string, p float64) *Injector {
	return in.add(&rule{scope: scope, kind: transientRule, prob: p, burst: 1})
}

// PermanentAfter schedules a permanent device failure: the first n
// operations within scope succeed, every later one fails. n=0 means the
// device is dead on arrival.
func (in *Injector) PermanentAfter(scope string, n int64) *Injector {
	return in.add(&rule{scope: scope, kind: permanentRule, after: n})
}

// StallEvery inflates latency: every n-th operation within scope is
// charged `extra` additional IOs of the same kind (or, on a wal device,
// extra write service times) before proceeding.
func (in *Injector) StallEvery(scope string, n int64, extra int64) *Injector {
	return in.add(&rule{scope: scope, kind: stallRule, every: n, extra: extra})
}

// TornEvery schedules a torn page write on every n-th write to the named
// wal device: only a prefix of the page reaches the medium, the write is
// never acknowledged, and the device fails from that point on (the log
// is broken there). bytes... optionally fixes the surviving prefix
// length; the default is half the page.
func (in *Injector) TornEvery(device string, n int64, bytes ...int) *Injector {
	r := &rule{scope: device, kind: tornRule, every: n}
	if len(bytes) > 0 {
		r.bytes = bytes[0]
	}
	return in.add(r)
}

// Stats returns a snapshot of injector activity.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// ChargedIO implements simio.Injector: every charged IO on an armed disk
// is judged here. Stall rules accumulate; among error rules the first
// match wins, with permanent failures taking precedence over transient
// ones (a dead device stays dead).
func (in *Injector) ChargedIO(space string, a simio.Access) simio.Outcome {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Consulted++
	var out simio.Outcome
	for _, r := range in.rules {
		if !r.matches(space) {
			continue
		}
		switch r.kind {
		case stallRule:
			if r.fires() {
				out.Stall += r.extra
				in.stats.Stalled += r.extra
			}
		case permanentRule:
			r.count++
			if r.count > r.after {
				out.Err = ErrPermanent
				in.stats.Permanent++
			}
		case transientRule:
			if r.left > 0 {
				r.left--
				if out.Err == nil {
					out.Err = ErrTransient
					in.stats.Transient++
				}
			} else if r.fires() {
				r.left = r.burst - 1
				if out.Err == nil {
					out.Err = ErrTransient
					in.stats.Transient++
				}
			}
		}
		if errors.Is(out.Err, ErrPermanent) {
			break
		}
	}
	return out
}

// PageWrite implements wal.WriteInjector: every page write on an armed
// wal device is judged here. Torn beats transient (the write must not
// look retryable if the medium kept a partial page), and permanent beats
// both.
func (in *Injector) PageWrite(device string) wal.WriteFault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.PageWrites++
	var wf wal.WriteFault
	for _, r := range in.rules {
		if !r.matches(device) {
			continue
		}
		switch r.kind {
		case stallRule:
			if r.fires() {
				wf.Stall += int(r.extra)
				in.stats.Stalled += r.extra
			}
		case permanentRule:
			r.count++
			if r.count > r.after {
				wf.Permanent = true
				in.stats.Permanent++
			}
		case transientRule:
			if r.left > 0 {
				r.left--
				wf.Transient++
				in.stats.Transient++
			} else if r.fires() {
				r.left = 0 // the whole burst maps onto this one write
				wf.Transient += r.burst
				in.stats.Transient += int64(r.burst)
			}
		case tornRule:
			if r.fires() {
				wf.Torn = true
				wf.TornBytes = r.bytes
				in.stats.Torn++
			}
		}
		if wf.Permanent {
			break
		}
	}
	return wf
}

var (
	_ simio.Injector    = (*Injector)(nil)
	_ wal.WriteInjector = (*Injector)(nil)
)
