package fault

import (
	"errors"
	"testing"
	"time"

	"mmdb/internal/cost"
	"mmdb/internal/simio"
	"mmdb/internal/wal"
)

func newDisk() (*simio.Disk, *cost.Clock) {
	clock := cost.NewClock(cost.DefaultParams())
	return simio.NewDisk(clock, 64), clock
}

func TestTaxonomyWrapsInjected(t *testing.T) {
	for _, err := range []error{ErrTransient, ErrPermanent} {
		if !errors.Is(err, simio.ErrInjected) {
			t.Errorf("%v does not wrap simio.ErrInjected", err)
		}
	}
	if errors.Is(ErrTransient, ErrPermanent) || errors.Is(ErrPermanent, ErrTransient) {
		t.Error("transient and permanent must be distinct")
	}
}

func TestTransientEveryFailsThenSucceeds(t *testing.T) {
	disk, _ := newDisk()
	disk.SetInjector(NewInjector(1).TransientEvery("", 3))
	sp := disk.MustCreate("t")
	var fails, oks int
	for i := 0; i < 12; i++ {
		if _, err := sp.Append([]byte{byte(i)}, simio.Seq); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("IO %d: %v is not transient", i, err)
			}
			fails++
		} else {
			oks++
		}
	}
	if fails != 4 || oks != 8 {
		t.Fatalf("every-3rd schedule over 12 IOs: %d failures, %d successes", fails, oks)
	}
}

func TestRetryAbsorbsTransientsChargesBackoff(t *testing.T) {
	disk, clock := newDisk()
	disk.SetInjector(NewInjector(1).TransientEvery("", 2)) // every 2nd IO fails
	sp := disk.MustCreate("t")
	for i := 0; i < 6; i++ {
		err := Retry(clock, 0, func() error {
			_, e := sp.Append([]byte{byte(i)}, simio.Seq)
			return e
		})
		if err != nil {
			t.Fatalf("append %d not absorbed: %v", i, err)
		}
	}
	// Every 2nd underlying IO fails, so each logical append alternates
	// between clean and fail-once-then-succeed; backoff charges land on
	// the clock as extra sequential IOs.
	c := clock.Counters()
	if c.SeqIOs <= 6 {
		t.Fatalf("expected retry+backoff charges beyond the 6 clean IOs, got %d", c.SeqIOs)
	}
}

func TestRetryFailsFastOnPermanent(t *testing.T) {
	disk, clock := newDisk()
	disk.SetInjector(NewInjector(1).PermanentAfter("", 2))
	sp := disk.MustCreate("t")
	for i := 0; i < 2; i++ {
		if _, err := sp.Append([]byte{1}, simio.Seq); err != nil {
			t.Fatalf("IO %d within budget failed: %v", i, err)
		}
	}
	attempts := 0
	err := Retry(clock, 0, func() error {
		attempts++
		_, e := sp.Append([]byte{1}, simio.Seq)
		return e
	})
	if !errors.Is(err, ErrPermanent) {
		t.Fatalf("want permanent failure, got %v", err)
	}
	if attempts != 1 {
		t.Fatalf("permanent fault retried %d times; must fail fast", attempts)
	}
}

func TestTransientBurstExhaustsBoundedRetry(t *testing.T) {
	disk, clock := newDisk()
	// A burst longer than the retry budget: 1 first try + 4 retries all hit
	// the burst, the 6th underlying attempt would succeed but is never made.
	disk.SetInjector(NewInjector(1).TransientBurst("", 1, 10))
	sp := disk.MustCreate("t")
	attempts := 0
	err := Retry(clock, 4, func() error {
		attempts++
		_, e := sp.Append([]byte{1}, simio.Seq)
		return e
	})
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("want exhausted transient, got %v", err)
	}
	if attempts != 5 {
		t.Fatalf("bounded retry made %d attempts, want 5", attempts)
	}
}

func TestStallInflatesCounters(t *testing.T) {
	disk, clock := newDisk()
	disk.SetInjector(NewInjector(1).StallEvery("hot", 1, 5))
	hot := disk.MustCreate("hot")
	cold := disk.MustCreate("cold")
	if _, err := cold.Append([]byte{1}, simio.Rand); err != nil {
		t.Fatal(err)
	}
	base := clock.Counters().RandIOs
	if base != 1 {
		t.Fatalf("cold IO charged %d", base)
	}
	if _, err := hot.Append([]byte{1}, simio.Rand); err != nil {
		t.Fatal(err)
	}
	if got := clock.Counters().RandIOs - base; got != 6 {
		t.Fatalf("stalled IO charged %d rand IOs, want 1+5", got)
	}
}

func TestScopePrefixMatching(t *testing.T) {
	disk, _ := newDisk()
	disk.SetInjector(NewInjector(1).PermanentAfter("spill:", 0))
	spill := disk.MustCreate("spill:r:0")
	other := disk.MustCreate("base")
	if _, err := spill.Append([]byte{1}, simio.Seq); !errors.Is(err, ErrPermanent) {
		t.Fatalf("scoped rule missed prefixed space: %v", err)
	}
	if _, err := other.Append([]byte{1}, simio.Seq); err != nil {
		t.Fatalf("scoped rule leaked onto other space: %v", err)
	}
}

func TestProbabilisticScheduleIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		disk, _ := newDisk()
		disk.SetInjector(NewInjector(seed).TransientProb("", 0.3))
		sp := disk.MustCreate("t")
		var verdicts []bool
		for i := 0; i < 64; i++ {
			_, err := sp.Append([]byte{byte(i)}, simio.Seq)
			verdicts = append(verdicts, err != nil)
		}
		return verdicts
	}
	a, b, c := run(7), run(7), run(8)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different verdict sequences")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical verdict sequences (suspicious)")
	}
}

func TestPageWriteTransientRetriedInDevice(t *testing.T) {
	dev := wal.NewDevice("log", 10*time.Millisecond)
	dev.Injector = NewInjector(1).TransientEvery("log", 2)
	t1, ok := dev.Write(0, make([]byte, 8))
	if !ok || t1 != 10*time.Millisecond {
		t.Fatalf("clean write: %v %v", t1, ok)
	}
	// 2nd write hits one transient: service + backoff(5ms) + service.
	t2, ok := dev.Write(t1, make([]byte, 8))
	if !ok {
		t.Fatal("transient write fault must be absorbed by device retry")
	}
	if want := t1 + 25*time.Millisecond; t2 != want {
		t.Fatalf("retried write done at %v, want %v", t2, want)
	}
	if dev.WriteRetries() != 1 {
		t.Fatalf("retries = %d", dev.WriteRetries())
	}
}

func TestPageWritePermanentKillsDevice(t *testing.T) {
	dev := wal.NewDevice("log", 10*time.Millisecond)
	dev.Injector = NewInjector(1).PermanentAfter("log", 1)
	if _, ok := dev.Write(0, []byte{1}); !ok {
		t.Fatal("first write should succeed")
	}
	if _, ok := dev.Write(0, []byte{2}); ok {
		t.Fatal("write past permanent failure succeeded")
	}
	if !dev.Failed() {
		t.Fatal("device not marked failed")
	}
	if _, ok := dev.Write(0, []byte{3}); ok {
		t.Fatal("dead device accepted a write")
	}
	if got := len(dev.DurablePages(time.Hour)); got != 1 {
		t.Fatalf("durable pages after death: %d, want 1", got)
	}
}

func TestTornWriteExposesChecksummedPrefix(t *testing.T) {
	recs := []wal.Record{
		{LSN: 1, Txn: 1, Type: wal.Begin},
		{LSN: 2, Txn: 1, Type: wal.Update, Rec: 7, Old: []byte("old"), New: []byte("new")},
		{LSN: 3, Txn: 1, Type: wal.Commit},
	}
	img, err := wal.EncodePage(recs, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Tear inside the second record: only LSN 1 survives intact.
	cut := recs[0].EncodedSize() + 10

	dev := wal.NewDevice("log", 10*time.Millisecond)
	dev.ExposeTorn = true
	dev.Injector = NewInjector(1).TornEvery("log", 1, cut)
	if _, ok := dev.Write(0, img); ok {
		t.Fatal("torn write acknowledged")
	}
	if !dev.Failed() {
		t.Fatal("torn write must kill the device (log broken at this page)")
	}
	pages := dev.DurablePages(time.Hour)
	if len(pages) != 1 || len(pages[0]) != cut {
		t.Fatalf("torn exposure: %d pages", len(pages))
	}
	got, intact := wal.DecodePageTail(pages[0])
	if intact {
		t.Fatal("torn page decoded as intact")
	}
	if len(got) != 1 || got[0].LSN != 1 {
		t.Fatalf("decoded %d records from torn prefix", len(got))
	}

	// Without ExposeTorn the page vanishes entirely.
	dev2 := wal.NewDevice("log", 10*time.Millisecond)
	dev2.Injector = NewInjector(1).TornEvery("log", 1, cut)
	dev2.Write(0, img)
	if got := len(dev2.DurablePages(time.Hour)); got != 0 {
		t.Fatalf("hidden torn page surfaced: %d", got)
	}
}

func TestFailAfterShimStillWorks(t *testing.T) {
	disk, _ := newDisk()
	disk.FailAfter(2)
	sp := disk.MustCreate("t")
	for i := 0; i < 2; i++ {
		if _, err := sp.Append([]byte{1}, simio.Seq); err != nil {
			t.Fatalf("IO %d within budget failed: %v", i, err)
		}
	}
	_, err := sp.Append([]byte{1}, simio.Seq)
	if !errors.Is(err, simio.ErrInjected) {
		t.Fatalf("shim failure: %v", err)
	}
	// FailAfter errors are not transient: Retry must fail fast.
	attempts := 0
	rerr := Retry(nil, 0, func() error { attempts++; _, e := sp.Append([]byte{1}, simio.Seq); return e })
	if rerr == nil || attempts != 1 {
		t.Fatalf("FailAfter error retried %d times (err %v)", attempts, rerr)
	}
	disk.FailAfter(-1)
	if _, err := sp.Append([]byte{1}, simio.Seq); err != nil {
		t.Fatalf("disarm failed: %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	disk, _ := newDisk()
	inj := NewInjector(1).TransientEvery("", 2).StallEvery("", 3, 2)
	disk.SetInjector(inj)
	sp := disk.MustCreate("t")
	for i := 0; i < 6; i++ {
		sp.Append([]byte{1}, simio.Seq) //nolint:errcheck — verdicts counted via stats
	}
	s := inj.Stats()
	if s.Consulted != 6 || s.Transient != 3 || s.Stalled != 4 {
		t.Fatalf("stats %+v", s)
	}
}

// TestTransientAtFiresExactlyOnce verifies the one-shot burst: operations
// at..at+burst-1 fail, everything before and after succeeds, and the rule
// never rearms no matter how far the count runs.
func TestTransientAtFiresExactlyOnce(t *testing.T) {
	disk, _ := newDisk()
	inj := NewInjector(1).TransientAt("t", 4, 3)
	disk.SetInjector(inj)
	sp := disk.MustCreate("t")
	var failed []int
	for i := 1; i <= 20; i++ {
		if _, err := sp.Append([]byte{1}, simio.Seq); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("op %d: wrong taxonomy: %v", i, err)
			}
			failed = append(failed, i)
		}
	}
	want := []int{4, 5, 6}
	if len(failed) != len(want) {
		t.Fatalf("failed ops %v, want %v", failed, want)
	}
	for i := range want {
		if failed[i] != want[i] {
			t.Fatalf("failed ops %v, want %v", failed, want)
		}
	}
	if s := inj.Stats(); s.Transient != 3 {
		t.Fatalf("stats %+v, want 3 transients", s)
	}
}
