package pbtree

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mmdb/internal/tuple"
)

func key(k int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(k)^(1<<63))
	return b[:]
}

func cfg() Config {
	return Config{PageSize: 4096, TupleWidth: 100}
}

func TestGeometry(t *testing.T) {
	// A page holds P/(L+2*ptr) = 4096/108 = 37 nodes — "slightly worse
	// than the B-tree" leaf capacity of 40.
	if got := cfg().NodesPerPage(); got != 37 {
		t.Fatalf("nodes/page = %d", got)
	}
	if _, err := New(Config{PageSize: 50, TupleWidth: 100}); err == nil {
		t.Fatal("degenerate geometry accepted")
	}
}

func TestInsertSearch(t *testing.T) {
	tr := MustNew(cfg())
	rng := rand.New(rand.NewSource(1))
	const n = 5000
	for _, k := range rng.Perm(n) {
		tr.Insert(key(int64(k)), make(tuple.Tuple, 100))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("len %d", tr.Len())
	}
	for i := 0; i < 200; i++ {
		k := int64(rng.Intn(n))
		if got := tr.Search(key(k), nil); len(got) != 1 {
			t.Fatalf("key %d: %d hits", k, len(got))
		}
	}
	if tr.Search(key(n+7), nil) != nil {
		t.Fatal("missing key found")
	}
}

func TestRandomInsertPageCostSitsBetweenAVLAndBTree(t *testing.T) {
	// The footnote's quantitative content: paging a BST clusters the hot
	// upper levels (so it beats the AVL tree's one-page-per-node ≈ log2 N
	// accesses) but its "fanout per node [is] slightly worse than the
	// B-tree" and deep levels scatter, so it stays well above the
	// B+-tree's height+1 ≈ 3 pages.
	tr := MustNew(cfg())
	rng := rand.New(rand.NewSource(2))
	const n = 50000
	perm := rng.Perm(n)
	for _, k := range perm {
		tr.Insert(key(int64(k)), make(tuple.Tuple, 100))
	}
	total := 0
	const lookups = 1000
	for i := 0; i < lookups; i++ {
		total += tr.PathPages(key(int64(perm[rng.Intn(n)])))
	}
	mean := float64(total) / lookups
	avlPages := math.Log2(n) + 0.25 // one page per inspected node
	if mean >= avlPages {
		t.Fatalf("mean pages/lookup %.1f not below the AVL baseline %.1f", mean, avlPages)
	}
	if mean < 4 {
		t.Fatalf("mean pages/lookup %.1f suspiciously close to a B+-tree — the footnote expects worse", mean)
	}
}

func TestSortedInsertsDegenerate(t *testing.T) {
	// The paper's footnote: "paged binary trees are not balanced and the
	// worst case access time may be significantly poorer than in the case
	// of a B-tree." Sorted insertion produces a right spine: ~N/nodesPerPage
	// pages on the path to the max key.
	tr := MustNew(cfg())
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Insert(key(int64(i)), make(tuple.Tuple, 100))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	worst := tr.PathPages(key(n - 1))
	expect := n / cfg().NodesPerPage()
	if worst < expect*9/10 {
		t.Fatalf("worst path %d pages, expected ≈%d (degenerate spine)", worst, expect)
	}
	if h := tr.Height(); h != n {
		t.Fatalf("height %d, expected the full spine %d", h, n)
	}
}

func TestDuplicateChaining(t *testing.T) {
	tr := MustNew(cfg())
	for i := 0; i < 4; i++ {
		tr.Insert(key(9), make(tuple.Tuple, 100))
	}
	if tr.Len() != 1 || tr.NumTuples() != 4 {
		t.Fatalf("len=%d tuples=%d", tr.Len(), tr.NumTuples())
	}
	if got := len(tr.Search(key(9), nil)); got != 4 {
		t.Fatalf("found %d duplicates", got)
	}
}

func TestQuickMatchesOracle(t *testing.T) {
	f := func(seed int64, n16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := MustNew(Config{PageSize: 256, TupleWidth: 20})
		oracle := map[int64]int{}
		for i := 0; i < int(n16)%300+10; i++ {
			k := int64(rng.Intn(60))
			tr.Insert(key(k), make(tuple.Tuple, 20))
			oracle[k]++
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		for k, n := range oracle {
			if len(tr.Search(key(k), nil)) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPagesBoundedByFill(t *testing.T) {
	tr := MustNew(cfg())
	rng := rand.New(rand.NewSource(5))
	const n = 20000
	for _, k := range rng.Perm(n) {
		tr.Insert(key(int64(k)), make(tuple.Tuple, 100))
	}
	// Pages cannot be fewer than perfectly packed, nor absurdly many.
	minPages := int(math.Ceil(float64(n) / float64(cfg().NodesPerPage())))
	if tr.NumPages() < minPages {
		t.Fatalf("%d pages below the packing bound %d", tr.NumPages(), minPages)
	}
	if tr.NumPages() > 4*minPages {
		t.Fatalf("%d pages, over 4x the packing bound %d", tr.NumPages(), minPages)
	}
}
