// Package pbtree implements the paged binary tree the paper's §2 footnote
// dismisses [MUNT70, CESA82]: an unbalanced binary search tree whose nodes
// are packed onto pages (a new node shares its parent's page while there
// is room), giving B-tree-like locality on random insertions.
//
// The footnote makes two claims this package lets the experiments verify:
// "the fanout per node will be slightly worse than the B-tree" (a page
// holds P/(L+2*ptr) nodes versus the leaf's P/L tuples) and "paged binary
// trees are not balanced and the worst case access time may be
// significantly poorer" (sorted insertion degenerates to a page-chain of
// depth N/nodesPerPage).
package pbtree

import (
	"bytes"
	"fmt"

	"mmdb/internal/tuple"
)

// Config fixes the tree geometry.
type Config struct {
	PageSize   int // P
	TupleWidth int // L
	Ptr        int // pointer width; 0 means 4
}

func (c Config) withDefaults() Config {
	if c.Ptr == 0 {
		c.Ptr = 4
	}
	return c
}

// NodesPerPage returns how many BST nodes (tuple + two child pointers)
// fit one page.
func (c Config) NodesPerPage() int {
	c = c.withDefaults()
	return c.PageSize / (c.TupleWidth + 2*c.Ptr)
}

type node struct {
	key         []byte
	tups        []tuple.Tuple
	left, right *node
	page        int
}

// Tree is a paged, unbalanced binary search tree.
// Not safe for concurrent use.
type Tree struct {
	cfg      Config
	root     *node
	keys     int
	tuples   int
	pageFill []int // nodes on each page
	openPage int   // most recent page with free slots (overflow target)
	comps    int64
}

// New creates an empty tree.
func New(cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	if cfg.NodesPerPage() < 1 {
		return nil, fmt.Errorf("pbtree: tuple width %d does not fit page size %d", cfg.TupleWidth, cfg.PageSize)
	}
	return &Tree{cfg: cfg}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of distinct keys.
func (t *Tree) Len() int { return t.keys }

// NumTuples returns the stored tuple count.
func (t *Tree) NumTuples() int { return t.tuples }

// NumPages returns the number of pages the structure occupies (S).
func (t *Tree) NumPages() int { return len(t.pageFill) }

// Comparisons returns key comparisons since construction or the last
// ResetComparisons.
func (t *Tree) Comparisons() int64 { return t.comps }

// ResetComparisons zeroes the comparison counter.
func (t *Tree) ResetComparisons() { t.comps = 0 }

// Insert adds tup under key; duplicates chain on one node. The new node is
// placed on its parent's page when there is room, else on a fresh page
// (the [MUNT70] allocation rule).
func (t *Tree) Insert(key []byte, tup tuple.Tuple) {
	if t.root == nil {
		t.root = t.newNode(key, tup, -1)
		return
	}
	n := t.root
	for {
		t.comps++
		switch c := bytes.Compare(key, n.key); {
		case c < 0:
			if n.left == nil {
				n.left = t.newNode(key, tup, n.page)
				return
			}
			n = n.left
		case c > 0:
			if n.right == nil {
				n.right = t.newNode(key, tup, n.page)
				return
			}
			n = n.right
		default:
			n.tups = append(n.tups, tup)
			t.tuples++
			return
		}
	}
}

// newNode allocates a node: on the parent's page when there is room (for
// path locality), else on the current overflow page (for occupancy), else
// on a fresh page.
func (t *Tree) newNode(key []byte, tup tuple.Tuple, parentPage int) *node {
	t.keys++
	t.tuples++
	var page int
	switch {
	case parentPage >= 0 && t.pageFill[parentPage] < t.cfg.NodesPerPage():
		page = parentPage
	case len(t.pageFill) > 0 && t.pageFill[t.openPage] < t.cfg.NodesPerPage():
		page = t.openPage
	default:
		page = len(t.pageFill)
		t.pageFill = append(t.pageFill, 0)
		t.openPage = page
	}
	t.pageFill[page]++
	return &node{
		key:  append([]byte(nil), key...),
		tups: []tuple.Tuple{tup},
		page: page,
	}
}

// Search returns the tuples under key. visit (which may be nil) receives
// the page of every inspected node; consecutive nodes on the same page are
// reported once, since they cost a single page access.
func (t *Tree) Search(key []byte, visit func(page int)) []tuple.Tuple {
	n := t.root
	lastPage := -1
	for n != nil {
		if visit != nil && n.page != lastPage {
			visit(n.page)
			lastPage = n.page
		}
		t.comps++
		switch c := bytes.Compare(key, n.key); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n.tups
		}
	}
	return nil
}

// PathPages returns the number of distinct pages on the root-to-key path
// (the page-access cost of one lookup).
func (t *Tree) PathPages(key []byte) int {
	n := 0
	t.Search(key, func(int) { n++ })
	return n
}

// Height returns the node height of the (unbalanced) tree.
func (t *Tree) Height() int {
	var h func(*node) int
	h = func(n *node) int {
		if n == nil {
			return 0
		}
		l, r := h(n.left), h(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.root)
}

// CheckInvariants verifies BST ordering and page accounting.
func (t *Tree) CheckInvariants() error {
	count := 0
	onPage := make([]int, len(t.pageFill))
	var walk func(n *node, lo, hi []byte) error
	walk = func(n *node, lo, hi []byte) error {
		if n == nil {
			return nil
		}
		count++
		if n.page < 0 || n.page >= len(t.pageFill) {
			return fmt.Errorf("pbtree: node on invalid page %d", n.page)
		}
		onPage[n.page]++
		if lo != nil && bytes.Compare(n.key, lo) <= 0 {
			return fmt.Errorf("pbtree: order violation")
		}
		if hi != nil && bytes.Compare(n.key, hi) >= 0 {
			return fmt.Errorf("pbtree: order violation")
		}
		if err := walk(n.left, lo, n.key); err != nil {
			return err
		}
		return walk(n.right, n.key, hi)
	}
	if err := walk(t.root, nil, nil); err != nil {
		return err
	}
	if count != t.keys {
		return fmt.Errorf("pbtree: %d reachable keys, recorded %d", count, t.keys)
	}
	for p, want := range t.pageFill {
		if onPage[p] != want {
			return fmt.Errorf("pbtree: page %d fill %d, recorded %d", p, onPage[p], want)
		}
		if want > t.cfg.NodesPerPage() {
			return fmt.Errorf("pbtree: page %d overfull (%d > %d)", p, want, t.cfg.NodesPerPage())
		}
	}
	return nil
}
