package tuple

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Field{Name: "id", Kind: Int64},
		Field{Name: "weight", Kind: Float64},
		Field{Name: "name", Kind: String, Size: 12},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaGeometry(t *testing.T) {
	s := testSchema(t)
	if s.Width() != 8+8+12 {
		t.Fatalf("width = %d", s.Width())
	}
	if s.NumFields() != 3 {
		t.Fatalf("fields = %d", s.NumFields())
	}
	if s.Offset(0) != 0 || s.Offset(1) != 8 || s.Offset(2) != 16 {
		t.Fatalf("offsets = %d %d %d", s.Offset(0), s.Offset(1), s.Offset(2))
	}
	if s.FieldIndex("weight") != 1 || s.FieldIndex("nope") != -1 {
		t.Fatal("FieldIndex broken")
	}
	want := "(id int64, weight float64, name string(12))"
	if s.String() != want {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestSchemaValidation(t *testing.T) {
	cases := [][]Field{
		{},
		{{Name: "", Kind: Int64}},
		{{Name: "a", Kind: Int64}, {Name: "a", Kind: Int64}},
		{{Name: "s", Kind: String}},           // missing size
		{{Name: "s", Kind: String, Size: -1}}, // bad size
		{{Name: "x", Kind: Kind(99)}},         // bad kind
	}
	for i, fs := range cases {
		if _, err := NewSchema(fs...); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema(t)
	f := func(id int64, w float64, name string) bool {
		if len(name) > 12 {
			name = name[:12]
		}
		// NUL bytes truncate on decode by design (fixed-width padding).
		clean := make([]byte, 0, len(name))
		for _, b := range []byte(name) {
			if b == 0 {
				break
			}
			clean = append(clean, b)
		}
		name = string(clean)
		tup, err := s.Encode(IntValue(id), FloatValue(w), StringValue(name))
		if err != nil {
			return false
		}
		vs := s.Decode(tup)
		return vs[0].I == id && vs[1].F == w && vs[2].S == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64EncodingIsOrderPreserving(t *testing.T) {
	s := MustSchema(Field{Name: "k", Kind: Int64})
	f := func(a, b int64) bool {
		ta := s.MustEncode(IntValue(a))
		tb := s.MustEncode(IntValue(b))
		cmp := bytes.Compare(s.KeyBytes(ta, 0), s.KeyBytes(tb, 0))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareValues(t *testing.T) {
	if Compare(IntValue(1), IntValue(2)) >= 0 {
		t.Error("1 < 2")
	}
	if Compare(FloatValue(2.5), FloatValue(2.5)) != 0 {
		t.Error("2.5 == 2.5")
	}
	if Compare(StringValue("b"), StringValue("a")) <= 0 {
		t.Error("b > a")
	}
	defer func() {
		if recover() == nil {
			t.Error("comparing mixed kinds should panic")
		}
	}()
	Compare(IntValue(1), StringValue("x"))
}

func TestSetRejectsWrongKindAndOversizedString(t *testing.T) {
	s := testSchema(t)
	tup := make(Tuple, s.Width())
	if err := s.Set(tup, 0, StringValue("x")); err == nil {
		t.Error("kind mismatch accepted")
	}
	if err := s.Set(tup, 2, StringValue("this is way beyond twelve")); err == nil {
		t.Error("oversized string accepted")
	}
}

func TestEncodeArityMismatch(t *testing.T) {
	s := testSchema(t)
	if _, err := s.Encode(IntValue(1)); err == nil {
		t.Error("short value list accepted")
	}
}

func TestProject(t *testing.T) {
	s := testSchema(t)
	p, proj, err := s.Project([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "(name string(12), id int64)" {
		t.Fatalf("projected schema %v", p)
	}
	tup := s.MustEncode(IntValue(7), FloatValue(1.5), StringValue("bob"))
	out := proj(tup)
	if p.Get(out, 0).S != "bob" || p.Get(out, 1).I != 7 {
		t.Fatalf("projection produced %s", p.Format(out))
	}
	if _, _, err := s.Project([]int{9}); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestConcat(t *testing.T) {
	a := MustSchema(Field{Name: "k", Kind: Int64})
	b := MustSchema(Field{Name: "k", Kind: Int64}, Field{Name: "v", Kind: String, Size: 4})
	out, comb, err := Concat(a, b, "a.", "b.")
	if err != nil {
		t.Fatal(err)
	}
	ta := a.MustEncode(IntValue(1))
	tb := b.MustEncode(IntValue(2), StringValue("xy"))
	j := comb(ta, tb)
	if out.Get(j, 0).I != 1 || out.Get(j, 1).I != 2 || out.Get(j, 2).S != "xy" {
		t.Fatalf("concat produced %s", out.Format(j))
	}
	if out.FieldIndex("a.k") != 0 || out.FieldIndex("b.v") != 2 {
		t.Fatal("concat field naming broken")
	}
}

func TestCompareFieldMatchesDecodedOrder(t *testing.T) {
	s := testSchema(t)
	a := s.MustEncode(IntValue(-5), FloatValue(0), StringValue("aa"))
	b := s.MustEncode(IntValue(3), FloatValue(0), StringValue("aa"))
	if s.CompareField(a, b, 0) >= 0 {
		t.Error("-5 should order below 3 byte-wise")
	}
	if s.CompareField(a, b, 2) != 0 {
		t.Error("equal strings should compare equal")
	}
}

func TestFormat(t *testing.T) {
	s := testSchema(t)
	tup := s.MustEncode(IntValue(7), FloatValue(1.5), StringValue("bob"))
	if got := s.Format(tup); got != "[7 1.5 bob]" {
		t.Fatalf("Format = %q", got)
	}
}
