// Package tuple implements fixed-width tuples over typed schemas.
//
// The 1984 paper characterizes a relation by its tuple width L, key width K
// and page size P; all storage and join algorithms in this repository
// operate on the fixed-width binary tuples defined here. Encoding is
// big-endian so that byte-wise comparison of an encoded integer column
// orders the same way as the integers themselves (for non-negative keys).
package tuple

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Kind identifies a column type.
type Kind uint8

// Supported column kinds.
const (
	Int64 Kind = iota + 1
	Float64
	String // fixed-width, NUL padded
)

func (k Kind) String() string {
	switch k {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Field describes one column of a schema.
type Field struct {
	Name string
	Kind Kind
	Size int // byte width; ignored (8) for Int64/Float64, required for String
}

func (f Field) width() int {
	switch f.Kind {
	case Int64, Float64:
		return 8
	default:
		return f.Size
	}
}

// Schema is an ordered list of fields with precomputed offsets.
// A Schema is immutable after construction.
type Schema struct {
	fields  []Field
	offsets []int
	width   int
	byName  map[string]int
}

// NewSchema validates the fields and returns a schema.
func NewSchema(fields ...Field) (*Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("tuple: schema needs at least one field")
	}
	s := &Schema{
		fields:  append([]Field(nil), fields...),
		offsets: make([]int, len(fields)),
		byName:  make(map[string]int, len(fields)),
	}
	off := 0
	for i, f := range s.fields {
		if f.Name == "" {
			return nil, fmt.Errorf("tuple: field %d has empty name", i)
		}
		if _, dup := s.byName[f.Name]; dup {
			return nil, fmt.Errorf("tuple: duplicate field name %q", f.Name)
		}
		switch f.Kind {
		case Int64, Float64:
		case String:
			if f.Size <= 0 {
				return nil, fmt.Errorf("tuple: string field %q needs positive Size", f.Name)
			}
		default:
			return nil, fmt.Errorf("tuple: field %q has invalid kind %v", f.Name, f.Kind)
		}
		s.byName[f.Name] = i
		s.offsets[i] = off
		off += f.width()
	}
	s.width = off
	return s, nil
}

// MustSchema is NewSchema that panics on error, for static schemas.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Width returns the fixed encoded tuple width in bytes (the paper's L).
func (s *Schema) Width() int { return s.width }

// NumFields returns the number of columns.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the i-th field descriptor.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// FieldIndex returns the index of the named field, or -1.
func (s *Schema) FieldIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Offset returns the byte offset of field i within an encoded tuple.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// FieldWidth returns the encoded width of field i.
func (s *Schema) FieldWidth(i int) int { return s.fields[i].width() }

func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", f.Name, f.Kind)
		if f.Kind == String {
			fmt.Fprintf(&b, "(%d)", f.Size)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is an encoded fixed-width row. Tuples are plain byte slices so they
// can be moved between pages with copy, exactly the "move" primitive the
// paper charges for.
type Tuple []byte

// Clone returns a copy of t.
func (t Tuple) Clone() Tuple {
	return append(Tuple(nil), t...)
}

// Value is a dynamically typed column value.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// IntValue returns an Int64 value.
func IntValue(v int64) Value { return Value{Kind: Int64, I: v} }

// FloatValue returns a Float64 value.
func FloatValue(v float64) Value { return Value{Kind: Float64, F: v} }

// StringValue returns a String value.
func StringValue(v string) Value { return Value{Kind: String, S: v} }

func (v Value) String() string {
	switch v.Kind {
	case Int64:
		return fmt.Sprintf("%d", v.I)
	case Float64:
		return fmt.Sprintf("%g", v.F)
	case String:
		return v.S
	default:
		return "<invalid>"
	}
}

// Compare orders two values of the same kind. It panics if the kinds differ
// or are invalid, which always indicates a planner/schema bug.
func Compare(a, b Value) int {
	if a.Kind != b.Kind {
		panic(fmt.Sprintf("tuple: comparing %v with %v", a.Kind, b.Kind))
	}
	switch a.Kind {
	case Int64:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case Float64:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case String:
		return strings.Compare(a.S, b.S)
	default:
		panic(fmt.Sprintf("tuple: comparing invalid kind %v", a.Kind))
	}
}

// Encode writes the values into a fresh tuple. The number and kinds of the
// values must match the schema.
func (s *Schema) Encode(values ...Value) (Tuple, error) {
	if len(values) != len(s.fields) {
		return nil, fmt.Errorf("tuple: schema has %d fields, got %d values", len(s.fields), len(values))
	}
	t := make(Tuple, s.width)
	for i, v := range values {
		if err := s.Set(t, i, v); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustEncode is Encode that panics on error, for tests and generators.
func (s *Schema) MustEncode(values ...Value) Tuple {
	t, err := s.Encode(values...)
	if err != nil {
		panic(err)
	}
	return t
}

// Set overwrites field i of t with v.
func (s *Schema) Set(t Tuple, i int, v Value) error {
	f := s.fields[i]
	if v.Kind != f.Kind {
		return fmt.Errorf("tuple: field %q is %v, got %v", f.Name, f.Kind, v.Kind)
	}
	off := s.offsets[i]
	switch f.Kind {
	case Int64:
		// Flip the sign bit so byte-wise comparison matches signed order.
		binary.BigEndian.PutUint64(t[off:], uint64(v.I)^(1<<63))
	case Float64:
		binary.BigEndian.PutUint64(t[off:], math.Float64bits(v.F))
	case String:
		if len(v.S) > f.Size {
			return fmt.Errorf("tuple: string %q exceeds field %q width %d", v.S, f.Name, f.Size)
		}
		dst := t[off : off+f.Size]
		n := copy(dst, v.S)
		for j := n; j < f.Size; j++ {
			dst[j] = 0
		}
	}
	return nil
}

// Get decodes field i of t.
func (s *Schema) Get(t Tuple, i int) Value {
	f := s.fields[i]
	off := s.offsets[i]
	switch f.Kind {
	case Int64:
		return IntValue(int64(binary.BigEndian.Uint64(t[off:]) ^ (1 << 63)))
	case Float64:
		return FloatValue(math.Float64frombits(binary.BigEndian.Uint64(t[off:])))
	case String:
		raw := t[off : off+f.Size]
		if j := bytes.IndexByte(raw, 0); j >= 0 {
			raw = raw[:j]
		}
		return StringValue(string(raw))
	default:
		panic(fmt.Sprintf("tuple: invalid kind %v", f.Kind))
	}
}

// Int returns field i of t, which must be Int64.
func (s *Schema) Int(t Tuple, i int) int64 {
	if s.fields[i].Kind != Int64 {
		panic(fmt.Sprintf("tuple: field %q is %v, not int64", s.fields[i].Name, s.fields[i].Kind))
	}
	return int64(binary.BigEndian.Uint64(t[s.offsets[i]:]) ^ (1 << 63))
}

// KeyBytes returns the raw encoded bytes of field i, suitable for hashing
// and byte-wise ordering (the encoding is order-preserving).
func (s *Schema) KeyBytes(t Tuple, i int) []byte {
	off := s.offsets[i]
	return t[off : off+s.fields[i].width()]
}

// CompareField orders two tuples by field i without decoding.
func (s *Schema) CompareField(a, b Tuple, i int) int {
	return bytes.Compare(s.KeyBytes(a, i), s.KeyBytes(b, i))
}

// Decode returns all column values of t.
func (s *Schema) Decode(t Tuple) []Value {
	vs := make([]Value, len(s.fields))
	for i := range s.fields {
		vs[i] = s.Get(t, i)
	}
	return vs
}

// Format renders t as a human-readable row.
func (s *Schema) Format(t Tuple) string {
	var b strings.Builder
	b.WriteByte('[')
	for i := range s.fields {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(s.Get(t, i).String())
	}
	b.WriteByte(']')
	return b.String()
}

// Project returns a schema consisting of the given columns of s, and an
// encoder that maps a tuple of s to a tuple of the projected schema.
func (s *Schema) Project(cols []int) (*Schema, func(Tuple) Tuple, error) {
	fields := make([]Field, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(s.fields) {
			return nil, nil, fmt.Errorf("tuple: project column %d out of range", c)
		}
		fields[i] = s.fields[c]
	}
	out, err := NewSchema(fields...)
	if err != nil {
		return nil, nil, err
	}
	proj := func(t Tuple) Tuple {
		p := make(Tuple, out.width)
		for i, c := range cols {
			copy(p[out.offsets[i]:], t[s.offsets[c]:s.offsets[c]+s.fields[c].width()])
		}
		return p
	}
	return out, proj, nil
}

// Concat returns the schema of a joined pair and a combiner. Field names are
// prefixed to stay unique.
func Concat(left, right *Schema, leftPrefix, rightPrefix string) (*Schema, func(l, r Tuple) Tuple, error) {
	fields := make([]Field, 0, len(left.fields)+len(right.fields))
	for _, f := range left.fields {
		f.Name = leftPrefix + f.Name
		fields = append(fields, f)
	}
	for _, f := range right.fields {
		f.Name = rightPrefix + f.Name
		fields = append(fields, f)
	}
	out, err := NewSchema(fields...)
	if err != nil {
		return nil, nil, err
	}
	lw := left.width
	comb := func(l, r Tuple) Tuple {
		t := make(Tuple, out.width)
		copy(t, l)
		copy(t[lw:], r)
		return t
	}
	return out, comb, nil
}
