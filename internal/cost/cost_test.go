package cost

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultParamsMatchTable2(t *testing.T) {
	p := DefaultParams()
	if p.Comp != 3*time.Microsecond || p.Hash != 9*time.Microsecond ||
		p.Move != 20*time.Microsecond || p.Swap != 60*time.Microsecond ||
		p.IOSeq != 10*time.Millisecond || p.IORand != 25*time.Millisecond ||
		p.F != 1.2 {
		t.Fatalf("Table 2 defaults wrong: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{},
		func() Params { p := DefaultParams(); p.Comp = 0; return p }(),
		func() Params { p := DefaultParams(); p.IORand = -1; return p }(),
		func() Params { p := DefaultParams(); p.F = 0.9; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestClockChargesAndAdvances(t *testing.T) {
	c := NewClock(DefaultParams())
	c.Comps(10)
	c.Hashes(2)
	c.Moves(3)
	c.Swaps(4)
	c.SeqIOs(1)
	c.RandIOs(2)
	got := c.Counters()
	want := Counters{Comps: 10, Hashes: 2, Moves: 3, Swaps: 4, SeqIOs: 1, RandIOs: 2}
	if got != want {
		t.Fatalf("counters %+v", got)
	}
	p := DefaultParams()
	expect := 10*p.Comp + 2*p.Hash + 3*p.Move + 4*p.Swap + p.IOSeq + 2*p.IORand
	if c.Now() != expect {
		t.Fatalf("now %v, want %v", c.Now(), expect)
	}
	if got.Time(p) != expect {
		t.Fatalf("Counters.Time %v", got.Time(p))
	}
	c.Advance(time.Second)
	if c.Now() != expect+time.Second {
		t.Fatal("Advance broken")
	}
	c.Reset()
	if c.Now() != 0 || c.Counters() != (Counters{}) {
		t.Fatal("Reset broken")
	}
}

func TestCountersAddSub(t *testing.T) {
	f := func(a, b Counters) bool {
		sum := a
		sum.Add(b)
		back := sum.Sub(b)
		return back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCPUvsIOSplit(t *testing.T) {
	p := DefaultParams()
	c := Counters{Comps: 100, SeqIOs: 5}
	if c.CPUTime(p) != 100*p.Comp {
		t.Fatal("CPUTime wrong")
	}
	if c.IOTime(p) != 5*p.IOSeq {
		t.Fatal("IOTime wrong")
	}
	if c.Time(p) != c.CPUTime(p)+c.IOTime(p) {
		t.Fatal("Time must be CPU+IO (no overlap, §3.2)")
	}
}

func TestClockConcurrentSafety(t *testing.T) {
	c := NewClock(DefaultParams())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Comps(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Counters().Comps; got != 8000 {
		t.Fatalf("lost updates: %d", got)
	}
}

func TestNegativeChargePanics(t *testing.T) {
	c := NewClock(DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge accepted")
		}
	}()
	c.Comps(-1)
}
