// Package cost defines the performance parameter model of DeWitt et al.
// (SIGMOD 1984) and a deterministic virtual clock.
//
// Every algorithm in this repository charges its CPU work (comparisons,
// hashes, tuple moves, swaps) and IO work (sequential and random page
// operations) to a Clock. Experiments report virtual elapsed time computed
// from the Table 2 / Table 3 parameter settings, which makes the 1984 disk
// and CPU ratios reproducible on modern hardware.
package cost

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Params holds the computer-system characterization of the paper (§3.2).
// Zero values are invalid; use DefaultParams (Table 2) as a starting point.
type Params struct {
	Comp   time.Duration // time to compare two keys
	Hash   time.Duration // time to hash a key
	Move   time.Duration // time to move a tuple
	Swap   time.Duration // time to swap two tuples
	IOSeq  time.Duration // time to perform a sequential IO operation
	IORand time.Duration // time to perform a random IO operation
	F      float64       // universal "fudge" factor for hash/sort structures
}

// DefaultParams returns the Table 2 parameter settings used to generate
// Figure 1 of the paper.
func DefaultParams() Params {
	return Params{
		Comp:   3 * time.Microsecond,
		Hash:   9 * time.Microsecond,
		Move:   20 * time.Microsecond,
		Swap:   60 * time.Microsecond,
		IOSeq:  10 * time.Millisecond,
		IORand: 25 * time.Millisecond,
		F:      1.2,
	}
}

// Validate reports an error when a parameter is non-positive or when the
// fudge factor is below one.
func (p Params) Validate() error {
	switch {
	case p.Comp <= 0, p.Hash <= 0, p.Move <= 0, p.Swap <= 0:
		return fmt.Errorf("cost: CPU parameters must be positive: %+v", p)
	case p.IOSeq <= 0, p.IORand <= 0:
		return fmt.Errorf("cost: IO parameters must be positive: %+v", p)
	case p.F < 1.0:
		return fmt.Errorf("cost: fudge factor F=%g must be >= 1", p.F)
	}
	return nil
}

// Counters records how many primitive operations have been charged.
type Counters struct {
	Comps   int64 // key comparisons
	Hashes  int64 // key hashes
	Moves   int64 // tuple moves
	Swaps   int64 // tuple swaps
	SeqIOs  int64 // sequential page IOs
	RandIOs int64 // random page IOs
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Comps += o.Comps
	c.Hashes += o.Hashes
	c.Moves += o.Moves
	c.Swaps += o.Swaps
	c.SeqIOs += o.SeqIOs
	c.RandIOs += o.RandIOs
}

// Sub returns c minus o.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Comps:   c.Comps - o.Comps,
		Hashes:  c.Hashes - o.Hashes,
		Moves:   c.Moves - o.Moves,
		Swaps:   c.Swaps - o.Swaps,
		SeqIOs:  c.SeqIOs - o.SeqIOs,
		RandIOs: c.RandIOs - o.RandIOs,
	}
}

// CPUTime returns the virtual CPU time the counters represent under p.
func (c Counters) CPUTime(p Params) time.Duration {
	return time.Duration(c.Comps)*p.Comp +
		time.Duration(c.Hashes)*p.Hash +
		time.Duration(c.Moves)*p.Move +
		time.Duration(c.Swaps)*p.Swap
}

// IOTime returns the virtual IO time the counters represent under p.
func (c Counters) IOTime(p Params) time.Duration {
	return time.Duration(c.SeqIOs)*p.IOSeq + time.Duration(c.RandIOs)*p.IORand
}

// Time returns the total virtual time (CPU + IO, no overlap, as assumed in
// §3.2 of the paper).
func (c Counters) Time(p Params) time.Duration {
	return c.CPUTime(p) + c.IOTime(p)
}

func (c Counters) String() string {
	return fmt.Sprintf("comps=%d hashes=%d moves=%d swaps=%d seqIO=%d randIO=%d",
		c.Comps, c.Hashes, c.Moves, c.Swaps, c.SeqIOs, c.RandIOs)
}

// Clock is a virtual clock with operation counters. It is safe for
// concurrent use: each counter is a cache-line-padded atomic, so parallel
// partition workers charge operations without serializing on a lock, and —
// because counter addition commutes — the totals after a parallel operator
// finishes are identical to the serial run's, regardless of interleaving.
// Virtual time is derived from the counters plus Advance'd time, which
// keeps Now consistent with Counters by construction. A snapshot taken
// while workers are still charging may be torn across counters; reads at
// quiescent points (before and after an operator runs, as all experiments
// do) are exact. The zero Clock is not usable; construct with NewClock.
type Clock struct {
	params Params // immutable after NewClock

	comps, hashes, moves, swaps, seqIOs, randIOs padCounter
	advanced                                     padCounter // Advance'd nanoseconds, outside the counters
}

// padCounter is an atomic counter padded to its own cache line so workers
// charging different operation kinds do not false-share.
type padCounter struct {
	n atomic.Int64
	_ [56]byte
}

// NewClock returns a clock charging at the given parameters.
func NewClock(p Params) *Clock {
	return &Clock{params: p}
}

// Params returns the parameter set the clock charges at.
func (c *Clock) Params() Params { return c.params }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.advanced.n.Load()) + c.Counters().Time(c.params)
}

// Counters returns a snapshot of the operation counters.
func (c *Clock) Counters() Counters {
	return Counters{
		Comps:   c.comps.n.Load(),
		Hashes:  c.hashes.n.Load(),
		Moves:   c.moves.n.Load(),
		Swaps:   c.swaps.n.Load(),
		SeqIOs:  c.seqIOs.n.Load(),
		RandIOs: c.randIOs.n.Load(),
	}
}

// Reset zeroes the clock and its counters.
func (c *Clock) Reset() {
	for _, p := range []*padCounter{&c.comps, &c.hashes, &c.moves, &c.swaps, &c.seqIOs, &c.randIOs, &c.advanced} {
		p.n.Store(0)
	}
}

// Advance moves the clock forward by d without charging any counter. It is
// used by the discrete-event transaction simulator for think time and
// device service time.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("cost: negative clock advance")
	}
	c.advanced.n.Add(int64(d))
}

// Charge merges a whole Counters batch into the clock — the session layer
// uses it to fold a per-session clock's totals back into the database's
// global clock at session close. Because counter addition commutes, a set
// of sessions merged in any order yields the same global totals as the
// serial run that charged the global clock directly.
func (c *Clock) Charge(o Counters) {
	c.charge(&c.comps, o.Comps)
	c.charge(&c.hashes, o.Hashes)
	c.charge(&c.moves, o.Moves)
	c.charge(&c.swaps, o.Swaps)
	c.charge(&c.seqIOs, o.SeqIOs)
	c.charge(&c.randIOs, o.RandIOs)
}

// Comps charges n key comparisons.
func (c *Clock) Comps(n int64) { c.charge(&c.comps, n) }

// Hashes charges n key hashes.
func (c *Clock) Hashes(n int64) { c.charge(&c.hashes, n) }

// Moves charges n tuple moves.
func (c *Clock) Moves(n int64) { c.charge(&c.moves, n) }

// Swaps charges n tuple swaps.
func (c *Clock) Swaps(n int64) { c.charge(&c.swaps, n) }

// SeqIOs charges n sequential page IO operations.
func (c *Clock) SeqIOs(n int64) { c.charge(&c.seqIOs, n) }

// RandIOs charges n random page IO operations.
func (c *Clock) RandIOs(n int64) { c.charge(&c.randIOs, n) }

func (c *Clock) charge(counter *padCounter, n int64) {
	if n < 0 {
		panic("cost: negative charge")
	}
	counter.n.Add(n)
}
