package expr

import (
	"math"
	"testing"
	"testing/quick"

	"mmdb/internal/tuple"
)

var schema = tuple.MustSchema(
	tuple.Field{Name: "a", Kind: tuple.Int64},
	tuple.Field{Name: "s", Kind: tuple.String, Size: 8},
)

func row(a int64, s string) tuple.Tuple {
	return schema.MustEncode(tuple.IntValue(a), tuple.StringValue(s))
}

func cmp(t *testing.T, col int, op Op, v tuple.Value) *Comparison {
	t.Helper()
	c, err := NewComparison(schema, col, op, v)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestComparisonOperators(t *testing.T) {
	r := row(5, "hello")
	cases := []struct {
		op   Op
		v    int64
		want bool
	}{
		{Eq, 5, true}, {Eq, 4, false},
		{Ne, 5, false}, {Ne, 4, true},
		{Lt, 6, true}, {Lt, 5, false},
		{Le, 5, true}, {Le, 4, false},
		{Gt, 4, true}, {Gt, 5, false},
		{Ge, 5, true}, {Ge, 6, false},
	}
	for _, tc := range cases {
		c := cmp(t, 0, tc.op, tuple.IntValue(tc.v))
		if got := c.Eval(r); got != tc.want {
			t.Errorf("5 %v %d = %v", tc.op, tc.v, got)
		}
	}
	sc := cmp(t, 1, Eq, tuple.StringValue("hello"))
	if !sc.Eval(r) {
		t.Error("string equality failed")
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewComparison(schema, 5, Eq, tuple.IntValue(1)); err == nil {
		t.Error("bad column accepted")
	}
	if _, err := NewComparison(schema, 0, Eq, tuple.StringValue("x")); err == nil {
		t.Error("kind mismatch accepted")
	}
	if _, err := NewComparison(schema, 0, Op(99), tuple.IntValue(1)); err == nil {
		t.Error("bad operator accepted")
	}
}

func TestCompositesMatchBooleanAlgebra(t *testing.T) {
	f := func(a int64, lo, hi int64) bool {
		r := row(a, "x")
		ge := cmp(t, 0, Ge, tuple.IntValue(lo))
		le := cmp(t, 0, Le, tuple.IntValue(hi))
		band := And(ge, le)
		bor := Or(ge, le)
		bnot := Not(band)
		wantAnd := a >= lo && a <= hi
		wantOr := a >= lo || a <= hi
		return band.Eval(r) == wantAnd && bor.Eval(r) == wantOr && bnot.Eval(r) == !wantAnd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	p := And(
		cmp(t, 0, Ge, tuple.IntValue(1)),
		Not(Or(cmp(t, 0, Eq, tuple.IntValue(7)), TrueP)),
	)
	want := "(a >= 1) AND (NOT ((a = 7) OR (TRUE)))"
	if p.String() != want {
		t.Fatalf("String() = %q", p.String())
	}
}

func TestWalkVisitsEveryLeaf(t *testing.T) {
	p := Or(And(cmp(t, 0, Eq, tuple.IntValue(1)), cmp(t, 0, Lt, tuple.IntValue(9))), Not(cmp(t, 1, Eq, tuple.StringValue("q"))))
	n := 0
	p.Walk(func(*Comparison) { n++ })
	if n != 3 {
		t.Fatalf("walked %d leaves", n)
	}
}

func TestSelectivityComposition(t *testing.T) {
	leaf := func(c *Comparison) float64 { return 0.5 }
	a := cmp(t, 0, Eq, tuple.IntValue(1))
	b := cmp(t, 0, Eq, tuple.IntValue(2))
	if s := Selectivity(And(a, b), leaf); math.Abs(s-0.25) > 1e-9 {
		t.Errorf("AND selectivity %f", s)
	}
	if s := Selectivity(Or(a, b), leaf); math.Abs(s-0.75) > 1e-9 {
		t.Errorf("OR selectivity %f", s)
	}
	if s := Selectivity(Not(a), leaf); math.Abs(s-0.5) > 1e-9 {
		t.Errorf("NOT selectivity %f", s)
	}
	if s := Selectivity(TrueP, leaf); s != 1 {
		t.Errorf("TRUE selectivity %f", s)
	}
	if s := Selectivity(a, func(*Comparison) float64 { return 7 }); s != 1 {
		t.Errorf("selectivity not clamped: %f", s)
	}
}

func TestDefaultLeafSelectivity(t *testing.T) {
	if DefaultLeafSelectivity(cmp(t, 0, Eq, tuple.IntValue(1))) != 0.1 {
		t.Error("Eq default")
	}
	if DefaultLeafSelectivity(cmp(t, 0, Ne, tuple.IntValue(1))) != 0.9 {
		t.Error("Ne default")
	}
	if s := DefaultLeafSelectivity(cmp(t, 0, Lt, tuple.IntValue(1))); math.Abs(s-1.0/3.0) > 1e-9 {
		t.Error("range default")
	}
}
