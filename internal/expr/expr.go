// Package expr implements typed selection predicates over tuples:
// column-versus-constant comparisons composed with AND/OR/NOT. Predicates
// evaluate against encoded tuples and carry enough structure for the
// §4 planner to estimate their selectivity (via catalog histograms or
// System R's textbook defaults).
package expr

import (
	"fmt"
	"strings"

	"mmdb/internal/tuple"
)

// Op is a comparison operator.
type Op int

// Comparison operators.
const (
	Eq Op = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Predicate is a boolean expression over one relation's tuples.
type Predicate interface {
	// Eval reports whether t satisfies the predicate.
	Eval(t tuple.Tuple) bool
	// String renders the predicate.
	String() string
	// Walk visits every comparison leaf (for selectivity estimation).
	Walk(fn func(c *Comparison))
}

// Comparison is a leaf: column <op> constant.
type Comparison struct {
	schema *tuple.Schema
	Col    int
	Op     Op
	Value  tuple.Value
}

// NewComparison builds a validated comparison.
func NewComparison(schema *tuple.Schema, col int, op Op, v tuple.Value) (*Comparison, error) {
	if col < 0 || col >= schema.NumFields() {
		return nil, fmt.Errorf("expr: column %d out of range", col)
	}
	if schema.Field(col).Kind != v.Kind {
		return nil, fmt.Errorf("expr: column %q is %v, constant is %v",
			schema.Field(col).Name, schema.Field(col).Kind, v.Kind)
	}
	switch op {
	case Eq, Ne, Lt, Le, Gt, Ge:
	default:
		return nil, fmt.Errorf("expr: invalid operator %d", int(op))
	}
	return &Comparison{schema: schema, Col: col, Op: op, Value: v}, nil
}

// Eval implements Predicate.
func (c *Comparison) Eval(t tuple.Tuple) bool {
	cmp := tuple.Compare(c.schema.Get(t, c.Col), c.Value)
	switch c.Op {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	default:
		panic("expr: invalid operator")
	}
}

// String implements Predicate.
func (c *Comparison) String() string {
	return fmt.Sprintf("%s %v %v", c.schema.Field(c.Col).Name, c.Op, c.Value)
}

// Walk implements Predicate.
func (c *Comparison) Walk(fn func(*Comparison)) { fn(c) }

type and struct{ kids []Predicate }

func (a *and) Eval(t tuple.Tuple) bool {
	for _, k := range a.kids {
		if !k.Eval(t) {
			return false
		}
	}
	return true
}
func (a *and) String() string { return joinKids(a.kids, " AND ") }
func (a *and) Walk(fn func(*Comparison)) {
	for _, k := range a.kids {
		k.Walk(fn)
	}
}

type or struct{ kids []Predicate }

func (o *or) Eval(t tuple.Tuple) bool {
	for _, k := range o.kids {
		if k.Eval(t) {
			return true
		}
	}
	return false
}
func (o *or) String() string { return joinKids(o.kids, " OR ") }
func (o *or) Walk(fn func(*Comparison)) {
	for _, k := range o.kids {
		k.Walk(fn)
	}
}

type not struct{ kid Predicate }

func (n *not) Eval(t tuple.Tuple) bool { return !n.kid.Eval(t) }
func (n *not) String() string          { return "NOT (" + n.kid.String() + ")" }
func (n *not) Walk(fn func(*Comparison)) {
	n.kid.Walk(fn)
}

// And conjoins predicates (true for none).
func And(ps ...Predicate) Predicate {
	if len(ps) == 1 {
		return ps[0]
	}
	return &and{kids: ps}
}

// Or disjoins predicates (false for none).
func Or(ps ...Predicate) Predicate {
	if len(ps) == 1 {
		return ps[0]
	}
	return &or{kids: ps}
}

// Not negates a predicate.
func Not(p Predicate) Predicate { return &not{kid: p} }

// TrueP is the always-true predicate.
var TrueP Predicate = &truePred{}

type truePred struct{}

func (*truePred) Eval(tuple.Tuple) bool  { return true }
func (*truePred) String() string         { return "TRUE" }
func (*truePred) Walk(func(*Comparison)) {}

func joinKids(ps []Predicate, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = "(" + p.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Selectivity estimates the fraction of tuples satisfying p. leafSel
// estimates one comparison (a histogram-backed estimator, or
// DefaultLeafSelectivity); composites combine under the standard
// independence assumptions (System R, as §4's [SELI79]).
func Selectivity(p Predicate, leafSel func(*Comparison) float64) float64 {
	switch p := p.(type) {
	case *Comparison:
		return clamp01(leafSel(p))
	case *and:
		s := 1.0
		for _, k := range p.kids {
			s *= Selectivity(k, leafSel)
		}
		return s
	case *or:
		s := 1.0
		for _, k := range p.kids {
			s *= 1 - Selectivity(k, leafSel)
		}
		return 1 - s
	case *not:
		return 1 - Selectivity(p.kid, leafSel)
	case *truePred:
		return 1
	default:
		return 0.5
	}
}

// DefaultLeafSelectivity is the System R fallback: 1/10 for equality,
// 1/3 for ranges, with Ne as the complement of Eq.
func DefaultLeafSelectivity(c *Comparison) float64 {
	switch c.Op {
	case Eq:
		return 0.1
	case Ne:
		return 0.9
	default:
		return 1.0 / 3.0
	}
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}
