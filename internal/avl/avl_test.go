package avl

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mmdb/internal/tuple"
)

func key(k int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(k)^(1<<63))
	return b[:]
}

func tup(k int64) tuple.Tuple {
	return tuple.Tuple(key(k))
}

func TestInsertSearchDelete(t *testing.T) {
	tr := &Tree{}
	for i := int64(0); i < 100; i++ {
		tr.Insert(key(i), tup(i))
	}
	if tr.Len() != 100 || tr.NumTuples() != 100 {
		t.Fatalf("len=%d tuples=%d", tr.Len(), tr.NumTuples())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Search(key(42), nil); len(got) != 1 || !bytes.Equal(got[0], tup(42)) {
		t.Fatalf("search(42) = %v", got)
	}
	if got := tr.Search(key(1000), nil); got != nil {
		t.Fatalf("search(missing) = %v", got)
	}
	if !tr.Delete(key(42)) {
		t.Fatal("delete(42) failed")
	}
	if tr.Delete(key(42)) {
		t.Fatal("double delete succeeded")
	}
	if got := tr.Search(key(42), nil); got != nil {
		t.Fatal("deleted key still found")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateKeysChain(t *testing.T) {
	tr := &Tree{}
	for i := 0; i < 5; i++ {
		tr.Insert(key(7), tup(int64(i)))
	}
	if tr.Len() != 1 || tr.NumTuples() != 5 {
		t.Fatalf("len=%d tuples=%d", tr.Len(), tr.NumTuples())
	}
	if got := tr.Search(key(7), nil); len(got) != 5 {
		t.Fatalf("found %d duplicates", len(got))
	}
	if !tr.Delete(key(7)) || tr.NumTuples() != 0 {
		t.Fatal("delete of duplicate chain broken")
	}
}

func TestHeightIsLogarithmic(t *testing.T) {
	tr := &Tree{}
	const n = 1 << 14
	for i := 0; i < n; i++ {
		tr.Insert(key(int64(i)), tup(int64(i))) // worst case: sorted inserts
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// AVL height bound: 1.44 * log2(n+2).
	max := int(1.4405*math.Log2(float64(n+2))) + 1
	if tr.Height() > max {
		t.Fatalf("height %d exceeds AVL bound %d for %d sorted inserts", tr.Height(), max, n)
	}
}

func TestSearchVisitsAboutLog2NNodes(t *testing.T) {
	// The §2 cost model: C = log2(||R||) + 0.25 expected comparisons.
	tr := &Tree{}
	rng := rand.New(rand.NewSource(5))
	const n = 50000
	perm := rng.Perm(n)
	for _, k := range perm {
		tr.Insert(key(int64(k)), tup(int64(k)))
	}
	tr.ResetComparisons()
	const lookups = 2000
	visits := 0
	for i := 0; i < lookups; i++ {
		k := int64(perm[rng.Intn(n)])
		tr.Search(key(k), func(NodeID) { visits++ })
	}
	mean := float64(visits) / lookups
	want := math.Log2(n) + 0.25
	if math.Abs(mean-want) > 2.5 {
		t.Fatalf("mean path length %.2f, model predicts %.2f", mean, want)
	}
}

func TestAscendInOrderFromStart(t *testing.T) {
	tr := &Tree{}
	keys := []int64{5, 1, 9, 3, 7, 2, 8}
	for _, k := range keys {
		tr.Insert(key(k), tup(k))
	}
	var got []int64
	tr.Ascend(key(3), nil, func(k []byte, vals []tuple.Tuple) bool {
		got = append(got, int64(binary.BigEndian.Uint64(k)^(1<<63)))
		return true
	})
	want := []int64{3, 5, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	tr.Ascend(nil, nil, func([]byte, []tuple.Tuple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestMin(t *testing.T) {
	tr := &Tree{}
	if k, _ := tr.Min(); k != nil {
		t.Fatal("empty tree has a min")
	}
	for _, k := range []int64{5, -3, 9} {
		tr.Insert(key(k), tup(k))
	}
	if k, _ := tr.Min(); !bytes.Equal(k, key(-3)) {
		t.Fatalf("min = %x", k)
	}
}

// TestQuickRandomOpsMatchMapOracle drives random insert/delete/search
// against a map oracle and checks the AVL invariants throughout.
func TestQuickRandomOpsMatchMapOracle(t *testing.T) {
	f := func(seed int64, opsN uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Tree{}
		oracle := map[int64]int{}
		ops := int(opsN)%400 + 50
		for i := 0; i < ops; i++ {
			k := int64(rng.Intn(60))
			switch rng.Intn(3) {
			case 0, 1:
				tr.Insert(key(k), tup(k))
				oracle[k]++
			case 2:
				deleted := tr.Delete(key(k))
				if deleted != (oracle[k] > 0) {
					return false
				}
				delete(oracle, k)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		// Every oracle key present with the right multiplicity; in-order
		// traversal sorted.
		total := 0
		for k, n := range oracle {
			if got := len(tr.Search(key(k), nil)); got != n {
				return false
			}
			total += n
		}
		if tr.NumTuples() != total || tr.Len() != len(oracle) {
			return false
		}
		var keys []int64
		tr.Ascend(nil, nil, func(k []byte, _ []tuple.Tuple) bool {
			keys = append(keys, int64(binary.BigEndian.Uint64(k)^(1<<63)))
			return true
		})
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
