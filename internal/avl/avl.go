// Package avl implements the height-balanced binary (AVL) tree the paper
// evaluates as a main-memory access method (§2).
//
// Keys are order-preserving byte strings (see tuple.Schema.KeyBytes); each
// distinct key holds the list of tuples carrying it. Search and scan
// operations can report every node they visit, which the Table 1
// experiments map onto pages to measure fault rates: an AVL tree has no
// page structure, so without special precautions each of the
// C = log2(|R|) + 0.25 inspected nodes lies on a different page.
package avl

import (
	"bytes"
	"fmt"

	"mmdb/internal/tuple"
)

// NodeID identifies a tree node for page-placement simulation. IDs are
// assigned in allocation order and are never reused.
type NodeID int64

// VisitFunc observes a node inspection during a search or scan.
type VisitFunc func(NodeID)

type node struct {
	id          NodeID
	key         []byte
	vals        []tuple.Tuple
	left, right *node
	height      int
}

func (n *node) balance() int {
	return height(n.left) - height(n.right)
}

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func (n *node) fix() {
	lh, rh := height(n.left), height(n.right)
	if lh > rh {
		n.height = lh + 1
	} else {
		n.height = rh + 1
	}
}

// Tree is an AVL tree mapping byte-string keys to tuples.
// The zero value is an empty tree. Not safe for concurrent use.
type Tree struct {
	root   *node
	keys   int
	tuples int
	nextID NodeID
	comps  int64
}

// Len returns the number of distinct keys.
func (t *Tree) Len() int { return t.keys }

// NumTuples returns the number of stored tuples.
func (t *Tree) NumTuples() int { return t.tuples }

// NumNodes returns the number of allocated nodes (== Len; exposed for the
// page placement model, which sizes S from the node count).
func (t *Tree) NumNodes() int { return t.keys }

// Height returns the tree height (0 for empty).
func (t *Tree) Height() int { return height(t.root) }

// Comparisons returns the total number of key comparisons performed by
// Insert/Delete/Search/Ascend since construction or the last ResetComparisons.
func (t *Tree) Comparisons() int64 { return t.comps }

// ResetComparisons zeroes the comparison counter.
func (t *Tree) ResetComparisons() { t.comps = 0 }

// Insert adds tup under key. Duplicate keys chain their tuples on one node.
func (t *Tree) Insert(key []byte, tup tuple.Tuple) {
	t.root = t.insert(t.root, key, tup)
	t.tuples++
}

func (t *Tree) insert(n *node, key []byte, tup tuple.Tuple) *node {
	if n == nil {
		t.keys++
		id := t.nextID
		t.nextID++
		return &node{id: id, key: append([]byte(nil), key...), vals: []tuple.Tuple{tup}, height: 1}
	}
	t.comps++
	switch c := bytes.Compare(key, n.key); {
	case c < 0:
		n.left = t.insert(n.left, key, tup)
	case c > 0:
		n.right = t.insert(n.right, key, tup)
	default:
		n.vals = append(n.vals, tup)
		return n
	}
	return rebalance(n)
}

// Delete removes every tuple stored under key and reports whether the key
// was present.
func (t *Tree) Delete(key []byte) bool {
	var removed int
	t.root, removed = t.delete(t.root, key)
	if removed == 0 {
		return false
	}
	t.keys--
	t.tuples -= removed
	return true
}

func (t *Tree) delete(n *node, key []byte) (*node, int) {
	if n == nil {
		return nil, 0
	}
	t.comps++
	var removed int
	switch c := bytes.Compare(key, n.key); {
	case c < 0:
		n.left, removed = t.delete(n.left, key)
	case c > 0:
		n.right, removed = t.delete(n.right, key)
	default:
		removed = len(n.vals)
		switch {
		case n.left == nil:
			return n.right, removed
		case n.right == nil:
			return n.left, removed
		default:
			// Replace with the in-order successor's payload, then delete
			// the successor from the right subtree.
			succ := n.right
			for succ.left != nil {
				succ = succ.left
			}
			n.key = succ.key
			n.vals = succ.vals
			var sub int
			n.right, sub = t.deleteMin(n.right)
			_ = sub
		}
	}
	if removed == 0 {
		return n, 0
	}
	return rebalance(n), removed
}

func (t *Tree) deleteMin(n *node) (*node, int) {
	if n.left == nil {
		return n.right, len(n.vals)
	}
	var removed int
	n.left, removed = t.deleteMin(n.left)
	return rebalance(n), removed
}

// Search returns the tuples stored under key, or nil. Every inspected node
// is reported to visit (which may be nil).
func (t *Tree) Search(key []byte, visit VisitFunc) []tuple.Tuple {
	n := t.root
	for n != nil {
		if visit != nil {
			visit(n.id)
		}
		t.comps++
		switch c := bytes.Compare(key, n.key); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n.vals
		}
	}
	return nil
}

// Ascend walks keys >= start in order, calling fn with each node's key and
// tuples until fn returns false or the tree is exhausted. A nil start walks
// the whole tree. Every touched node is reported to visit.
func (t *Tree) Ascend(start []byte, visit VisitFunc, fn func(key []byte, vals []tuple.Tuple) bool) {
	t.ascend(t.root, start, visit, fn)
}

func (t *Tree) ascend(n *node, start []byte, visit VisitFunc, fn func([]byte, []tuple.Tuple) bool) bool {
	if n == nil {
		return true
	}
	if visit != nil {
		visit(n.id)
	}
	inRange := true
	if start != nil {
		t.comps++
		inRange = bytes.Compare(n.key, start) >= 0
	}
	if inRange {
		if !t.ascend(n.left, start, visit, fn) {
			return false
		}
		if !fn(n.key, n.vals) {
			return false
		}
		return t.ascend(n.right, start, visit, fn)
	}
	return t.ascend(n.right, start, visit, fn)
}

// Min returns the smallest key and its tuples, or nil for an empty tree.
func (t *Tree) Min() ([]byte, []tuple.Tuple) {
	n := t.root
	if n == nil {
		return nil, nil
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, n.vals
}

// CheckInvariants verifies the BST ordering and AVL balance properties.
// It is intended for tests and returns a descriptive error on violation.
func (t *Tree) CheckInvariants() error {
	keys := 0
	_, err := check(t.root, nil, nil, &keys)
	if err != nil {
		return err
	}
	if keys != t.keys {
		return fmt.Errorf("avl: size %d but %d reachable keys", t.keys, keys)
	}
	return nil
}

func check(n *node, lo, hi []byte, keys *int) (int, error) {
	if n == nil {
		return 0, nil
	}
	*keys++
	if lo != nil && bytes.Compare(n.key, lo) <= 0 {
		return 0, fmt.Errorf("avl: key %x not greater than lower bound %x", n.key, lo)
	}
	if hi != nil && bytes.Compare(n.key, hi) >= 0 {
		return 0, fmt.Errorf("avl: key %x not less than upper bound %x", n.key, hi)
	}
	lh, err := check(n.left, lo, n.key, keys)
	if err != nil {
		return 0, err
	}
	rh, err := check(n.right, n.key, hi, keys)
	if err != nil {
		return 0, err
	}
	h := lh + 1
	if rh >= lh {
		h = rh + 1
	}
	if h != n.height {
		return 0, fmt.Errorf("avl: node %x stored height %d, actual %d", n.key, n.height, h)
	}
	if d := lh - rh; d < -1 || d > 1 {
		return 0, fmt.Errorf("avl: node %x unbalanced (left %d, right %d)", n.key, lh, rh)
	}
	return h, nil
}

func rebalance(n *node) *node {
	n.fix()
	switch b := n.balance(); {
	case b > 1:
		if n.left.balance() < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case b < -1:
		if n.right.balance() > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.fix()
	l.fix()
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.fix()
	r.fix()
	return r
}
