package avl

import (
	"math/rand"
	"testing"
)

func BenchmarkInsert(b *testing.B) {
	tr := &Tree{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(key(int64(i*2654435761)), tup(int64(i)))
	}
}

func BenchmarkSearch(b *testing.B) {
	tr := &Tree{}
	rng := rand.New(rand.NewSource(1))
	const n = 100000
	perm := rng.Perm(n)
	for _, k := range perm {
		tr.Insert(key(int64(k)), tup(int64(k)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(key(int64(perm[i%n])), nil)
	}
}
