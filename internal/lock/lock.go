// Package lock implements the extended lock table of §5.2: besides the
// usual holder and waiter sets, every lock tracks the pre-committed
// transactions that have released it but are not yet durably committed.
// A transaction granted such a lock becomes dependent on those
// pre-committed transactions; the dependency list is what the log manager
// uses to order commit groups topologically.
package lock

import (
	"fmt"
	"sort"

	"mmdb/internal/wal"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// GrantFunc is invoked when a queued request is granted. deps lists the
// pre-committed transactions the grantee now depends on.
type GrantFunc func(deps []wal.TxnID)

type waiter struct {
	txn   wal.TxnID
	mode  Mode
	grant GrantFunc
}

type state struct {
	holders      map[wal.TxnID]Mode
	preCommitted map[wal.TxnID]struct{}
	waiters      []waiter
}

func (s *state) compatible(txn wal.TxnID, mode Mode) bool {
	for h, hm := range s.holders {
		if h == txn {
			continue
		}
		if mode == Exclusive || hm == Exclusive {
			return false
		}
	}
	return true
}

// Manager is the lock table. Not safe for concurrent use; the engine runs
// it from the simulator's event loop.
type Manager struct {
	locks map[uint64]*state
	held  map[wal.TxnID]map[uint64]struct{}
}

// NewManager returns an empty lock table.
func NewManager() *Manager {
	return &Manager{
		locks: make(map[uint64]*state),
		held:  make(map[wal.TxnID]map[uint64]struct{}),
	}
}

func (m *Manager) stateOf(res uint64) *state {
	s, ok := m.locks[res]
	if !ok {
		s = &state{
			holders:      make(map[wal.TxnID]Mode),
			preCommitted: make(map[wal.TxnID]struct{}),
		}
		m.locks[res] = s
	}
	return s
}

// Acquire requests the lock on res for txn. If the lock is available the
// request is granted before Acquire returns (grant is called synchronously)
// and Acquire reports true; otherwise the request queues and grant runs
// when the lock frees up.
//
// Re-acquiring a held lock (same or weaker mode) is a no-op grant; a
// Shared→Exclusive upgrade is granted when txn is the only holder and
// queues otherwise.
func (m *Manager) Acquire(txn wal.TxnID, res uint64, mode Mode, grant GrantFunc) bool {
	s := m.stateOf(res)
	if cur, ok := s.holders[txn]; ok && (cur == Exclusive || mode == Shared) {
		grant(nil)
		return true
	}
	if s.compatible(txn, mode) && len(s.waiters) == 0 {
		m.grantNow(s, txn, res, mode, grant)
		return true
	}
	s.waiters = append(s.waiters, waiter{txn: txn, mode: mode, grant: grant})
	return false
}

func (m *Manager) grantNow(s *state, txn wal.TxnID, res uint64, mode Mode, grant GrantFunc) {
	s.holders[txn] = mode
	if m.held[txn] == nil {
		m.held[txn] = make(map[uint64]struct{})
	}
	m.held[txn][res] = struct{}{}
	deps := make([]wal.TxnID, 0, len(s.preCommitted))
	for t := range s.preCommitted {
		deps = append(deps, t)
	}
	sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
	grant(deps)
}

// PreCommit moves txn from the holding list to the pre-committed list on
// every lock it holds (the paper assumes all locks are held until
// pre-commit) and grants eligible waiters.
func (m *Manager) PreCommit(txn wal.TxnID) {
	for res := range m.held[txn] {
		s := m.locks[res]
		delete(s.holders, txn)
		s.preCommitted[txn] = struct{}{}
		m.grantWaiters(s, res)
	}
	delete(m.held, txn)
}

// Finish removes a durably committed (or fully aborted) transaction from
// all pre-committed lists.
func (m *Manager) Finish(txn wal.TxnID) {
	for res, s := range m.locks {
		delete(s.preCommitted, txn)
		m.cleanup(res, s)
	}
}

// ReleaseAll drops txn's holds and queued requests without pre-committing
// (the abort path) and grants eligible waiters.
func (m *Manager) ReleaseAll(txn wal.TxnID) {
	for res := range m.held[txn] {
		s := m.locks[res]
		delete(s.holders, txn)
		m.grantWaiters(s, res)
	}
	delete(m.held, txn)
	for res, s := range m.locks {
		filtered := s.waiters[:0]
		for _, w := range s.waiters {
			if w.txn != txn {
				filtered = append(filtered, w)
			}
		}
		s.waiters = filtered
		m.grantWaiters(s, res)
	}
}

func (m *Manager) grantWaiters(s *state, res uint64) {
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		if cur, ok := s.holders[w.txn]; ok && (cur == Exclusive || w.mode == Shared) {
			s.waiters = s.waiters[1:]
			w.grant(nil)
			continue
		}
		if !s.compatible(w.txn, w.mode) {
			return
		}
		s.waiters = s.waiters[1:]
		m.grantNow(s, w.txn, res, w.mode, w.grant)
	}
}

func (m *Manager) cleanup(res uint64, s *state) {
	if len(s.holders) == 0 && len(s.preCommitted) == 0 && len(s.waiters) == 0 {
		delete(m.locks, res)
	}
}

// Holders returns the transactions currently holding res (for tests).
func (m *Manager) Holders(res uint64) []wal.TxnID {
	s, ok := m.locks[res]
	if !ok {
		return nil
	}
	out := make([]wal.TxnID, 0, len(s.holders))
	for t := range s.holders {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PreCommitted returns the pre-committed set of res (for tests).
func (m *Manager) PreCommitted(res uint64) []wal.TxnID {
	s, ok := m.locks[res]
	if !ok {
		return nil
	}
	out := make([]wal.TxnID, 0, len(s.preCommitted))
	for t := range s.preCommitted {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Waiting returns the queued transactions on res in order (for tests).
func (m *Manager) Waiting(res uint64) []wal.TxnID {
	s, ok := m.locks[res]
	if !ok {
		return nil
	}
	out := make([]wal.TxnID, 0, len(s.waiters))
	for _, w := range s.waiters {
		out = append(out, w.txn)
	}
	return out
}

// CheckInvariants verifies internal consistency (for tests).
func (m *Manager) CheckInvariants() error {
	for res, s := range m.locks {
		x := 0
		for _, mode := range s.holders {
			if mode == Exclusive {
				x++
			}
		}
		if x > 1 {
			return fmt.Errorf("lock: resource %d has %d exclusive holders", res, x)
		}
		if x == 1 && len(s.holders) > 1 {
			return fmt.Errorf("lock: resource %d mixes X with other holders", res)
		}
	}
	for txn, resources := range m.held {
		for res := range resources {
			s, ok := m.locks[res]
			if !ok {
				return fmt.Errorf("lock: txn %d claims missing resource %d", txn, res)
			}
			if _, ok := s.holders[txn]; !ok {
				return fmt.Errorf("lock: txn %d claims unheld resource %d", txn, res)
			}
		}
	}
	return nil
}
