package lock

import (
	"testing"

	"mmdb/internal/wal"
)

func mustGrant(t *testing.T, m *Manager, txn wal.TxnID, res uint64, mode Mode) []wal.TxnID {
	t.Helper()
	var deps []wal.TxnID
	granted := m.Acquire(txn, res, mode, func(d []wal.TxnID) { deps = d })
	if !granted {
		t.Fatalf("txn %d should get resource %d immediately", txn, res)
	}
	return deps
}

func TestExclusiveConflictAndFIFOGrant(t *testing.T) {
	m := NewManager()
	mustGrant(t, m, 1, 10, Exclusive)
	var order []wal.TxnID
	if m.Acquire(2, 10, Exclusive, func([]wal.TxnID) { order = append(order, 2) }) {
		t.Fatal("conflicting acquire granted")
	}
	if m.Acquire(3, 10, Exclusive, func([]wal.TxnID) { order = append(order, 3) }) {
		t.Fatal("conflicting acquire granted")
	}
	if w := m.Waiting(10); len(w) != 2 || w[0] != 2 || w[1] != 3 {
		t.Fatalf("waiters %v", w)
	}
	m.PreCommit(1)
	// Only txn 2 can hold the X lock now; 3 still waits.
	if len(order) != 1 || order[0] != 2 {
		t.Fatalf("grant order %v", order)
	}
	m.PreCommit(2)
	if len(order) != 2 || order[1] != 3 {
		t.Fatalf("grant order %v", order)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedCompatibility(t *testing.T) {
	m := NewManager()
	mustGrant(t, m, 1, 5, Shared)
	mustGrant(t, m, 2, 5, Shared)
	if h := m.Holders(5); len(h) != 2 {
		t.Fatalf("holders %v", h)
	}
	granted := m.Acquire(3, 5, Exclusive, func([]wal.TxnID) {})
	if granted {
		t.Fatal("X granted alongside S holders")
	}
	// A later S request must not jump the queued X (no starvation).
	if m.Acquire(4, 5, Shared, func([]wal.TxnID) {}) {
		t.Fatal("S request overtook a queued X request")
	}
}

func TestDependencyListFromPreCommitted(t *testing.T) {
	m := NewManager()
	mustGrant(t, m, 1, 7, Exclusive)
	m.PreCommit(1)
	if pc := m.PreCommitted(7); len(pc) != 1 || pc[0] != 1 {
		t.Fatalf("pre-committed %v", pc)
	}
	// §5.2: "when a transaction is granted a lock, it becomes dependent on
	// the pre-committed transactions that formerly held the lock."
	deps := mustGrant(t, m, 2, 7, Exclusive)
	if len(deps) != 1 || deps[0] != 1 {
		t.Fatalf("deps = %v", deps)
	}
	m.Finish(1)
	m.PreCommit(2)
	deps = mustGrant(t, m, 3, 7, Exclusive)
	if len(deps) != 1 || deps[0] != 2 {
		t.Fatalf("deps after finish = %v (txn 1 must be gone)", deps)
	}
}

func TestReacquireAndUpgrade(t *testing.T) {
	m := NewManager()
	mustGrant(t, m, 1, 3, Shared)
	mustGrant(t, m, 1, 3, Shared)    // re-acquire
	mustGrant(t, m, 1, 3, Exclusive) // sole holder upgrade
	if !m.Acquire(2, 3, Shared, func([]wal.TxnID) {}) == false {
		t.Fatal("S granted under X")
	}
	// Upgrade blocked when another S holder exists.
	m2 := NewManager()
	mustGrant(t, m2, 1, 3, Shared)
	mustGrant(t, m2, 2, 3, Shared)
	upgraded := false
	if m2.Acquire(1, 3, Exclusive, func([]wal.TxnID) { upgraded = true }) {
		t.Fatal("upgrade granted with two S holders")
	}
	m2.PreCommit(2)
	if !upgraded {
		t.Fatal("upgrade not granted after other holder released")
	}
}

func TestReleaseAllAbortPath(t *testing.T) {
	m := NewManager()
	mustGrant(t, m, 1, 1, Exclusive)
	mustGrant(t, m, 1, 2, Exclusive)
	granted := false
	m.Acquire(2, 1, Exclusive, func([]wal.TxnID) { granted = true })
	m.ReleaseAll(1)
	if !granted {
		t.Fatal("waiter not granted after abort release")
	}
	// Aborted transaction leaves no pre-committed residue.
	if pc := m.PreCommitted(1); len(pc) != 0 {
		t.Fatalf("pre-committed residue %v", pc)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAllRemovesQueuedRequests(t *testing.T) {
	m := NewManager()
	mustGrant(t, m, 1, 9, Exclusive)
	m.Acquire(2, 9, Exclusive, func([]wal.TxnID) { t.Fatal("aborted waiter granted") })
	granted3 := false
	m.Acquire(3, 9, Exclusive, func([]wal.TxnID) { granted3 = true })
	m.ReleaseAll(2) // 2 aborts while waiting
	m.PreCommit(1)
	if !granted3 {
		t.Fatal("txn 3 should be granted after 2's queued request was removed")
	}
}

func TestFinishClearsAllPreCommittedEntries(t *testing.T) {
	m := NewManager()
	mustGrant(t, m, 1, 1, Exclusive)
	mustGrant(t, m, 1, 2, Exclusive)
	m.PreCommit(1)
	m.Finish(1)
	for _, res := range []uint64{1, 2} {
		if pc := m.PreCommitted(res); len(pc) != 0 {
			t.Fatalf("resource %d still lists %v", res, pc)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
