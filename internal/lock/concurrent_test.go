package lock

import (
	"sync"
	"testing"

	"mmdb/internal/wal"
)

// lockedManager is the test-side equivalent of the engine's session façade:
// a Manager (single-threaded by design) serialized behind a mutex, with
// grant callbacks converted into channel waits so goroutines can block on
// queued requests.
type lockedManager struct {
	mu sync.Mutex
	m  *Manager
}

func newLockedManager() *lockedManager {
	return &lockedManager{m: NewManager()}
}

// acquire blocks until txn holds res in mode and returns the pre-commit
// dependency list the grant carried.
func (l *lockedManager) acquire(txn wal.TxnID, res uint64, mode Mode) []wal.TxnID {
	ch := make(chan []wal.TxnID, 1)
	l.mu.Lock()
	l.m.Acquire(txn, res, mode, func(deps []wal.TxnID) { ch <- deps })
	l.mu.Unlock()
	return <-ch
}

func (l *lockedManager) release(txn wal.TxnID) {
	l.mu.Lock()
	l.m.ReleaseAll(txn)
	l.mu.Unlock()
}

func (l *lockedManager) preCommit(txn wal.TxnID) {
	l.mu.Lock()
	l.m.PreCommit(txn)
	l.mu.Unlock()
}

func (l *lockedManager) finish(txn wal.TxnID) {
	l.mu.Lock()
	l.m.Finish(txn)
	l.mu.Unlock()
}

func (l *lockedManager) check(t *testing.T) {
	t.Helper()
	l.mu.Lock()
	err := l.m.CheckInvariants()
	l.mu.Unlock()
	if err != nil {
		t.Error(err)
	}
}

// TestConcurrentRacingSharedExclusive hammers a handful of resources from
// many goroutines with mixed S/X requests and verifies, with an external
// readers-writer account per resource, that the table never grants an
// exclusive lock alongside anything else.
func TestConcurrentRacingSharedExclusive(t *testing.T) {
	l := newLockedManager()

	const (
		goroutines = 10
		iterations = 60
		resources  = 3
	)
	type account struct {
		mu      sync.Mutex
		readers int
		writers int
	}
	accounts := make([]account, resources)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn := wal.TxnID(g + 1)
			for i := 0; i < iterations; i++ {
				res := uint64((g + i) % resources)
				mode := Shared
				if (g+i)%3 == 0 {
					mode = Exclusive
				}
				l.acquire(txn, res, mode)

				a := &accounts[res]
				a.mu.Lock()
				if mode == Exclusive {
					if a.readers != 0 || a.writers != 0 {
						t.Errorf("X granted on %d with %d readers, %d writers", res, a.readers, a.writers)
					}
					a.writers++
				} else {
					if a.writers != 0 {
						t.Errorf("S granted on %d with %d writers", res, a.writers)
					}
					a.readers++
				}
				a.mu.Unlock()

				a.mu.Lock()
				if mode == Exclusive {
					a.writers--
				} else {
					a.readers--
				}
				a.mu.Unlock()
				l.release(txn)
			}
		}(g)
	}
	wg.Wait()
	l.check(t)
	for res := uint64(0); res < resources; res++ {
		l.mu.Lock()
		holders := l.m.Holders(res)
		waiting := l.m.Waiting(res)
		l.mu.Unlock()
		if len(holders) != 0 || len(waiting) != 0 {
			t.Errorf("resource %d not drained: holders=%v waiting=%v", res, holders, waiting)
		}
	}
}

// TestConcurrentWaitQueueFairness checks FIFO service: behind an exclusive
// holder, queued requests are granted in arrival order (with adjacent
// shared requests batched, which preserves relative order).
func TestConcurrentWaitQueueFairness(t *testing.T) {
	l := newLockedManager()
	const res = uint64(42)

	holder := wal.TxnID(1)
	l.acquire(holder, res, Exclusive)

	// Queue S(2), S(3), X(4), S(5) while the holder pins the lock. Each
	// enqueue happens under the mutex in order, so arrival order is fixed.
	var order []wal.TxnID
	var orderMu sync.Mutex
	record := func(txn wal.TxnID) GrantFunc {
		return func([]wal.TxnID) {
			orderMu.Lock()
			order = append(order, txn)
			orderMu.Unlock()
		}
	}
	l.mu.Lock()
	l.m.Acquire(2, res, Shared, record(2))
	l.m.Acquire(3, res, Shared, record(3))
	l.m.Acquire(4, res, Exclusive, record(4))
	l.m.Acquire(5, res, Shared, record(5))
	l.mu.Unlock()

	l.release(holder) // grants 2 and 3 (shared batch), stops at X(4)
	orderMu.Lock()
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Fatalf("after holder release: grant order %v, want [2 3]", order)
	}
	orderMu.Unlock()

	l.release(2)
	l.release(3) // grants X(4); S(5) must stay queued behind it
	orderMu.Lock()
	if len(order) != 3 || order[2] != 4 {
		t.Fatalf("after readers release: grant order %v, want [2 3 4]", order)
	}
	orderMu.Unlock()

	l.release(4)
	orderMu.Lock()
	if len(order) != 4 || order[3] != 5 {
		t.Fatalf("final grant order %v, want [2 3 4 5]", order)
	}
	orderMu.Unlock()
	l.check(t)
}

// TestConcurrentReleaseWithPreCommitDependency races the §5.2 pre-commit
// path: writers release their locks by pre-committing, and the readers
// granted afterwards must each carry the writer in their dependency list
// until Finish clears it.
func TestConcurrentReleaseWithPreCommitDependency(t *testing.T) {
	l := newLockedManager()
	const pairs = 8

	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			res := uint64(100 + p)
			writer := wal.TxnID(2*p + 1)
			reader := wal.TxnID(2*p + 2)

			l.acquire(writer, res, Exclusive)

			got := make(chan []wal.TxnID, 1)
			l.mu.Lock()
			l.m.Acquire(reader, res, Shared, func(deps []wal.TxnID) { got <- deps })
			l.mu.Unlock()

			// Writer pre-commits: its lock is released but the grant must
			// record the dependency.
			l.preCommit(writer)
			deps := <-got
			if len(deps) != 1 || deps[0] != writer {
				t.Errorf("pair %d: reader deps %v, want [%d]", p, deps, writer)
			}

			// After the writer durably commits, new grants carry no deps.
			l.finish(writer)
			l.release(reader)
			if deps := l.acquire(reader, res, Shared); len(deps) != 0 {
				t.Errorf("pair %d: deps %v after Finish, want none", p, deps)
			}
			l.release(reader)
		}(p)
	}
	wg.Wait()
	l.check(t)
}
