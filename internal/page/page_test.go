package page

import (
	"testing"

	"mmdb/internal/tuple"
)

func TestCapacityMatchesPaperWorkload(t *testing.T) {
	// Table 2: 40 tuples of 100 bytes per 4096-byte page.
	if got := CapacityFor(DefaultSize, 100); got != 40 {
		t.Fatalf("capacity = %d, want 40", got)
	}
}

func TestAppendAndRead(t *testing.T) {
	p := New(256, 20)
	if p.Capacity() != (256-4)/20 {
		t.Fatalf("capacity = %d", p.Capacity())
	}
	mk := func(b byte) tuple.Tuple {
		t := make(tuple.Tuple, 20)
		for i := range t {
			t[i] = b
		}
		return t
	}
	n := 0
	for p.Append(mk(byte(n))) {
		n++
		if n > p.Capacity() {
			t.Fatal("appended beyond capacity")
		}
	}
	if n != p.Capacity() || !p.Full() {
		t.Fatalf("filled %d of %d", n, p.Capacity())
	}
	for i := 0; i < n; i++ {
		if got := p.Tuple(i); got[0] != byte(i) {
			t.Fatalf("tuple %d = %x", i, got[0])
		}
	}
	if got := len(p.Tuples()); got != n {
		t.Fatalf("Tuples() = %d", got)
	}
	p.Reset()
	if p.Count() != 0 {
		t.Fatal("reset did not empty the page")
	}
}

func TestWrapValidatesHeader(t *testing.T) {
	p := New(128, 20)
	p.Append(make(tuple.Tuple, 20))
	q := Wrap(p.Bytes(), 20)
	if q.Count() != 1 {
		t.Fatalf("wrapped count = %d", q.Count())
	}
	bad := make([]byte, 128)
	bad[3] = 0xFF // absurd count
	defer func() {
		if recover() == nil {
			t.Fatal("corrupt header accepted")
		}
	}()
	Wrap(bad, 20)
}

func TestGeometryPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(16, 20) }, // tuple wider than page
		func() { New(256, 0) }, // zero width
		func() {
			p := New(256, 20)
			p.Append(make(tuple.Tuple, 8)) // wrong width
		},
		func() {
			p := New(256, 20)
			p.Tuple(0) // out of range
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
