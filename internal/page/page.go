// Package page implements the fixed-width slotted page layout used by heap
// files, sort runs, hash partitions and B+-tree leaves.
//
// Layout: a 4-byte big-endian tuple count followed by densely packed
// fixed-width tuples. With a 4 KB page and a 100-byte tuple this matches
// the paper's 40 tuples/page workload (Table 2).
package page

import (
	"encoding/binary"
	"fmt"

	"mmdb/internal/tuple"
)

// DefaultSize is the paper's page size P (4096 bytes).
const DefaultSize = 4096

// headerSize is the per-page bookkeeping overhead.
const headerSize = 4

// TuplePage is a view over one page image holding fixed-width tuples.
// It does not own the byte slice.
type TuplePage struct {
	data  []byte
	width int
}

// New initializes an empty tuple page of the given total size for tuples of
// the given width.
func New(pageSize, width int) TuplePage {
	p := TuplePage{data: make([]byte, pageSize), width: width}
	p.checkGeometry()
	return p
}

// Wrap interprets an existing page image (for example one read from a
// simio.Space) as a tuple page.
func Wrap(data []byte, width int) TuplePage {
	p := TuplePage{data: data, width: width}
	p.checkGeometry()
	if n := p.Count(); n > p.Capacity() {
		panic(fmt.Sprintf("page: corrupt page header: count %d exceeds capacity %d", n, p.Capacity()))
	}
	return p
}

func (p TuplePage) checkGeometry() {
	if p.width <= 0 {
		panic("page: tuple width must be positive")
	}
	if CapacityFor(len(p.data), p.width) < 1 {
		panic(fmt.Sprintf("page: tuple width %d does not fit page size %d", p.width, len(p.data)))
	}
}

// CapacityFor returns how many tuples of the given width fit a page of the
// given size.
func CapacityFor(pageSize, width int) int {
	return (pageSize - headerSize) / width
}

// Bytes returns the underlying page image.
func (p TuplePage) Bytes() []byte { return p.data }

// Capacity returns the maximum number of tuples the page can hold.
func (p TuplePage) Capacity() int { return CapacityFor(len(p.data), p.width) }

// Count returns the number of tuples currently on the page.
func (p TuplePage) Count() int {
	return int(binary.BigEndian.Uint32(p.data))
}

func (p TuplePage) setCount(n int) {
	binary.BigEndian.PutUint32(p.data, uint32(n))
}

// Full reports whether the page has no free slot.
func (p TuplePage) Full() bool { return p.Count() >= p.Capacity() }

// Reset empties the page.
func (p TuplePage) Reset() {
	p.setCount(0)
}

// Append adds t to the page. It reports false when the page is full.
func (p TuplePage) Append(t tuple.Tuple) bool {
	if len(t) != p.width {
		panic(fmt.Sprintf("page: appending %d-byte tuple to %d-byte slots", len(t), p.width))
	}
	n := p.Count()
	if n >= p.Capacity() {
		return false
	}
	copy(p.data[headerSize+n*p.width:], t)
	p.setCount(n + 1)
	return true
}

// Tuple returns the i-th tuple on the page as a view into the page image.
// Callers that retain the tuple past the page's lifetime must Clone it.
func (p TuplePage) Tuple(i int) tuple.Tuple {
	if i < 0 || i >= p.Count() {
		panic(fmt.Sprintf("page: tuple index %d out of range [0,%d)", i, p.Count()))
	}
	off := headerSize + i*p.width
	return tuple.Tuple(p.data[off : off+p.width])
}

// Tuples returns views of all tuples on the page.
func (p TuplePage) Tuples() []tuple.Tuple {
	n := p.Count()
	out := make([]tuple.Tuple, n)
	for i := 0; i < n; i++ {
		out[i] = p.Tuple(i)
	}
	return out
}
