// Package store implements the memory-resident database of §5: an array of
// fixed-size records grouped into pages, with the stable-memory dirty-page
// table of §5.5 (which pages changed since their last checkpoint, and the
// LSN of the first such change — the table that determines where recovery
// must start reading the log).
package store

import (
	"fmt"
	"sort"

	"mmdb/internal/wal"
)

// Store is the in-memory database. Not safe for concurrent use.
type Store struct {
	recSize        int
	recordsPerPage int
	data           []byte // records packed in record-id order

	// dirty maps page id -> LSN of the first update since the page was
	// last checkpointed (§5.5's stable-memory table).
	dirty map[int]wal.LSN
	// lastLSN maps page id -> LSN of the latest update, used to honor the
	// WAL rule when checkpointing.
	lastLSN map[int]wal.LSN
}

// New creates a zero-filled store.
func New(numRecords, recSize, recordsPerPage int) (*Store, error) {
	if numRecords < 1 || recSize < 1 || recordsPerPage < 1 {
		return nil, fmt.Errorf("store: invalid geometry (%d records x %d bytes, %d per page)",
			numRecords, recSize, recordsPerPage)
	}
	return &Store{
		recSize:        recSize,
		recordsPerPage: recordsPerPage,
		data:           make([]byte, numRecords*recSize),
		dirty:          make(map[int]wal.LSN),
		lastLSN:        make(map[int]wal.LSN),
	}, nil
}

// NumRecords returns the record count.
func (s *Store) NumRecords() int { return len(s.data) / s.recSize }

// RecordSize returns the fixed record size in bytes.
func (s *Store) RecordSize() int { return s.recSize }

// RecordsPerPage returns the page grouping factor.
func (s *Store) RecordsPerPage() int { return s.recordsPerPage }

// NumPages returns the number of data pages.
func (s *Store) NumPages() int {
	return (s.NumRecords() + s.recordsPerPage - 1) / s.recordsPerPage
}

// PageOf returns the page holding record rec.
func (s *Store) PageOf(rec uint64) int { return int(rec) / s.recordsPerPage }

// Read returns a copy of record rec.
func (s *Store) Read(rec uint64) []byte {
	off := int(rec) * s.recSize
	return append([]byte(nil), s.data[off:off+s.recSize]...)
}

// Write replaces record rec with val, recording lsn in the dirty-page
// table. val must be exactly RecordSize bytes.
func (s *Store) Write(rec uint64, val []byte, lsn wal.LSN) error {
	if len(val) != s.recSize {
		return fmt.Errorf("store: record %d: value %d bytes, want %d", rec, len(val), s.recSize)
	}
	off := int(rec) * s.recSize
	if off+s.recSize > len(s.data) {
		return fmt.Errorf("store: record %d out of range", rec)
	}
	copy(s.data[off:], val)
	p := s.PageOf(rec)
	if _, ok := s.dirty[p]; !ok {
		s.dirty[p] = lsn
	}
	if lsn > s.lastLSN[p] {
		s.lastLSN[p] = lsn
	}
	return nil
}

// Apply is Write without dirty tracking, used by recovery redo/undo.
func (s *Store) Apply(rec uint64, val []byte) error {
	if len(val) != s.recSize {
		return fmt.Errorf("store: record %d: value %d bytes, want %d", rec, len(val), s.recSize)
	}
	off := int(rec) * s.recSize
	if off+s.recSize > len(s.data) {
		return fmt.Errorf("store: record %d out of range", rec)
	}
	copy(s.data[off:], val)
	return nil
}

// DirtyPages returns the dirty page ids in ascending order.
func (s *Store) DirtyPages() []int {
	out := make([]int, 0, len(s.dirty))
	for p := range s.dirty {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// FirstUpdateLSN returns the first-update LSN of page p since its last
// checkpoint, and whether the page is dirty.
func (s *Store) FirstUpdateLSN(p int) (wal.LSN, bool) {
	lsn, ok := s.dirty[p]
	return lsn, ok
}

// LastUpdateLSN returns the LSN of the newest update on page p (0 if the
// page was never written).
func (s *Store) LastUpdateLSN(p int) wal.LSN { return s.lastLSN[p] }

// RecoveryStartLSN returns the oldest first-update LSN across all dirty
// pages: "the oldest entry in the table determines the point in the log
// from which recovery should commence" (§5.5). It returns 0 when nothing
// is dirty, meaning the snapshot is current and only the log tail after
// the newest checkpoint matters; callers treat 0 as "no redo lower bound".
func (s *Store) RecoveryStartLSN() (wal.LSN, bool) {
	var min wal.LSN
	found := false
	for _, lsn := range s.dirty {
		if !found || lsn < min {
			min, found = lsn, true
		}
	}
	return min, found
}

// PageImage returns a copy of page p's bytes (short final page allowed).
func (s *Store) PageImage(p int) []byte {
	start := p * s.recordsPerPage * s.recSize
	end := start + s.recordsPerPage*s.recSize
	if end > len(s.data) {
		end = len(s.data)
	}
	if start >= end {
		return nil
	}
	return append([]byte(nil), s.data[start:end]...)
}

// InstallPage overwrites page p from a checkpoint image (recovery load).
func (s *Store) InstallPage(p int, img []byte) error {
	start := p * s.recordsPerPage * s.recSize
	if start >= len(s.data) {
		return fmt.Errorf("store: page %d out of range", p)
	}
	end := start + len(img)
	if end > len(s.data) {
		return fmt.Errorf("store: page %d image of %d bytes overflows store", p, len(img))
	}
	copy(s.data[start:end], img)
	return nil
}

// Checkpointed clears page p's dirty entry: its current image has reached
// stable storage ("when a page is checkpointed to disk, its update status
// is reset", §5.5).
func (s *Store) Checkpointed(p int) {
	delete(s.dirty, p)
}

// Clone returns an independent deep copy of the store — data and
// dirty-page bookkeeping. Used to snapshot replica state mid-stream for
// byte-identity checks against a reference prefix.
func (s *Store) Clone() *Store {
	c := &Store{
		recSize:        s.recSize,
		recordsPerPage: s.recordsPerPage,
		data:           append([]byte(nil), s.data...),
		dirty:          make(map[int]wal.LSN, len(s.dirty)),
		lastLSN:        make(map[int]wal.LSN, len(s.lastLSN)),
	}
	for p, lsn := range s.dirty {
		c.dirty[p] = lsn
	}
	for p, lsn := range s.lastLSN {
		c.lastLSN[p] = lsn
	}
	return c
}

// Equal reports whether two stores hold identical data.
func (s *Store) Equal(o *Store) bool {
	if len(s.data) != len(o.data) || s.recSize != o.recSize {
		return false
	}
	for i := range s.data {
		if s.data[i] != o.data[i] {
			return false
		}
	}
	return true
}
