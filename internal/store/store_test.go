package store

import (
	"bytes"
	"testing"

	"mmdb/internal/wal"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := New(100, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGeometry(t *testing.T) {
	s := newStore(t)
	if s.NumRecords() != 100 || s.RecordSize() != 8 || s.NumPages() != 10 {
		t.Fatalf("geometry %d/%d/%d", s.NumRecords(), s.RecordSize(), s.NumPages())
	}
	if s.PageOf(37) != 3 {
		t.Fatalf("PageOf(37) = %d", s.PageOf(37))
	}
	if _, err := New(0, 8, 10); err == nil {
		t.Fatal("zero records accepted")
	}
}

func TestWriteReadAndDirtyTracking(t *testing.T) {
	s := newStore(t)
	val := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := s.Write(15, val, 100); err != nil {
		t.Fatal(err)
	}
	if got := s.Read(15); !bytes.Equal(got, val) {
		t.Fatalf("read %v", got)
	}
	if got := s.Read(16); !bytes.Equal(got, make([]byte, 8)) {
		t.Fatal("untouched record not zero")
	}
	// First-update LSN sticks; last-update advances.
	s.Write(16, val, 120)
	first, ok := s.FirstUpdateLSN(1)
	if !ok || first != 100 {
		t.Fatalf("first-update = %d/%v", first, ok)
	}
	if s.LastUpdateLSN(1) != 120 {
		t.Fatalf("last-update = %d", s.LastUpdateLSN(1))
	}
	if d := s.DirtyPages(); len(d) != 1 || d[0] != 1 {
		t.Fatalf("dirty = %v", d)
	}
	min, ok := s.RecoveryStartLSN()
	if !ok || min != 100 {
		t.Fatalf("recovery start %d/%v", min, ok)
	}
	s.Checkpointed(1)
	if _, ok := s.RecoveryStartLSN(); ok {
		t.Fatal("dirty after checkpoint")
	}
	// Re-dirtying starts a fresh first-update entry.
	s.Write(15, val, 300)
	first, _ = s.FirstUpdateLSN(1)
	if first != 300 {
		t.Fatalf("fresh entry = %d", first)
	}
}

func TestWriteValidation(t *testing.T) {
	s := newStore(t)
	if err := s.Write(5, []byte{1}, 1); err == nil {
		t.Fatal("short value accepted")
	}
	if err := s.Write(1000, make([]byte, 8), 1); err == nil {
		t.Fatal("out-of-range record accepted")
	}
	if err := s.Apply(1000, make([]byte, 8)); err == nil {
		t.Fatal("out-of-range apply accepted")
	}
}

func TestApplyDoesNotDirty(t *testing.T) {
	s := newStore(t)
	if err := s.Apply(5, []byte{9, 9, 9, 9, 9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if len(s.DirtyPages()) != 0 {
		t.Fatal("Apply marked a page dirty")
	}
}

func TestPageImageInstallRoundTrip(t *testing.T) {
	s := newStore(t)
	for i := uint64(20); i < 30; i++ {
		s.Write(i, []byte{byte(i), 0, 0, 0, 0, 0, 0, 0}, wal.LSN(i))
	}
	img := s.PageImage(2)
	if len(img) != 80 {
		t.Fatalf("image %d bytes", len(img))
	}
	other := newStore(t)
	if err := other.InstallPage(2, img); err != nil {
		t.Fatal(err)
	}
	for i := uint64(20); i < 30; i++ {
		if !bytes.Equal(other.Read(i), s.Read(i)) {
			t.Fatalf("record %d differs after install", i)
		}
	}
	if err := other.InstallPage(99, img); err == nil {
		t.Fatal("out-of-range install accepted")
	}
}

func TestEqual(t *testing.T) {
	a, b := newStore(t), newStore(t)
	if !a.Equal(b) {
		t.Fatal("fresh stores differ")
	}
	a.Write(1, []byte{1, 0, 0, 0, 0, 0, 0, 0}, 1)
	if a.Equal(b) {
		t.Fatal("modified stores equal")
	}
}

func TestShortFinalPage(t *testing.T) {
	s, err := New(15, 8, 10) // second page holds only 5 records
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPages() != 2 {
		t.Fatalf("pages = %d", s.NumPages())
	}
	img := s.PageImage(1)
	if len(img) != 5*8 {
		t.Fatalf("short page image %d bytes", len(img))
	}
	if err := s.InstallPage(1, img); err != nil {
		t.Fatal(err)
	}
}
