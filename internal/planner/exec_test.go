package planner

import (
	"testing"

	"mmdb/internal/cost"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
	"mmdb/internal/workload"
)

// execQuery builds a two-table query with real storage bindings.
func execQuery(t *testing.T, filter bool) (Query, *simio.Disk) {
	t.Helper()
	clock := cost.NewClock(cost.DefaultParams())
	disk := simio.NewDisk(clock, 512)
	a := workload.MustGenerate(disk, workload.RelationSpec{Name: "A", Tuples: 200, KeyDomain: 40, PayloadWidth: 12, Seed: 61})
	b := workload.MustGenerate(disk, workload.RelationSpec{Name: "B", Tuples: 60, KeyDomain: 40, PayloadWidth: 12, Seed: 62})
	var f func(tuple.Tuple) bool
	sel := 1.0
	if filter {
		sel = 0.5
		sc := a.Schema()
		f = func(tp tuple.Tuple) bool { return sc.Int(tp, 0)%2 == 0 }
	}
	return Query{
		M: 16,
		Tables: []Table{
			{Name: "A", Tuples: 200, TuplesPerPage: a.TuplesPerPage(), Width: a.Schema().Width(),
				Selectivity: sel, Filter: f,
				Distinct: map[int]int64{0: 40},
				Rel:      ExecSource{File: a, ClassCols: map[int]int{0: 0}}},
			{Name: "B", Tuples: 60, TuplesPerPage: b.TuplesPerPage(), Width: b.Schema().Width(),
				Selectivity: 1,
				Distinct:    map[int]int64{0: 40},
				Rel:         ExecSource{File: b, ClassCols: map[int]int{0: 0}}},
		},
		Edges: []Edge{{A: 0, B: 1, Class: 0}},
	}, disk
}

func oracleMatches(t *testing.T, q Query, disk *simio.Disk) int64 {
	t.Helper()
	a := q.Tables[0].Rel.File
	b := q.Tables[1].Rel.File
	sa, sb := a.Schema(), b.Schema()
	var bKeys []int64
	b.Scan(simio.Uncharged, func(tp tuple.Tuple) bool {
		bKeys = append(bKeys, sb.Int(tp, 0))
		return true
	})
	var n int64
	a.Scan(simio.Uncharged, func(tp tuple.Tuple) bool {
		if q.Tables[0].Filter != nil && !q.Tables[0].Filter(tp) {
			return true
		}
		k := sa.Int(tp, 0)
		for _, bk := range bKeys {
			if bk == k {
				n++
			}
		}
		return true
	})
	return n
}

func TestExecuteMatchesOracle(t *testing.T) {
	for _, filter := range []bool{false, true} {
		q, disk := execQuery(t, filter)
		p, err := OptimizeHashOnly(q)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Execute(q, p)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := out.NumTuples(), oracleMatches(t, q, disk); got != want {
			t.Fatalf("filter=%v: executed %d rows, oracle %d", filter, got, want)
		}
	}
}

func TestExecuteRejectsMissingBinding(t *testing.T) {
	q, _ := execQuery(t, false)
	q.Tables[1].Rel = ExecSource{}
	p, err := OptimizeHashOnly(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(q, p); err == nil {
		t.Fatal("missing storage binding accepted")
	}
}

func TestExecuteJoinedOutputSchema(t *testing.T) {
	q, _ := execQuery(t, false)
	p, err := OptimizeHashOnly(q)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Execute(q, p)
	if err != nil {
		t.Fatal(err)
	}
	// Combined width regardless of build-side swap.
	want := q.Tables[0].Width + q.Tables[1].Width
	if out.Schema().Width() != want {
		t.Fatalf("output width %d, want %d", out.Schema().Width(), want)
	}
	// Join keys agree on every output row.
	sc := out.Schema()
	lk := sc.FieldIndex("l.key")
	rk := sc.FieldIndex("r.key")
	if lk < 0 || rk < 0 {
		t.Fatalf("prefixed columns missing in %v", sc)
	}
	out.Scan(simio.Uncharged, func(tp tuple.Tuple) bool {
		if sc.Int(tp, lk) != sc.Int(tp, rk) {
			t.Fatalf("joined row keys differ: %s", sc.Format(tp))
		}
		return true
	})
}
