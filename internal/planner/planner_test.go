package planner

import (
	"testing"

	"mmdb/internal/cost"
	"mmdb/internal/join"
)

// starQuery is a fact table with two dimensions, one highly selective.
func starQuery(m int) Query {
	return Query{
		M:      m,
		Params: cost.DefaultParams(),
		W:      1,
		Tables: []Table{
			{Name: "fact", Tuples: 200000, TuplesPerPage: 40, Width: 100, Selectivity: 1,
				Distinct: map[int]int64{0: 10000, 1: 1000}},
			{Name: "dimA", Tuples: 10000, TuplesPerPage: 40, Width: 100, Selectivity: 1,
				Distinct: map[int]int64{0: 10000}},
			{Name: "dimB", Tuples: 1000, TuplesPerPage: 40, Width: 100, Selectivity: 0.01,
				Distinct: map[int]int64{1: 1000}},
		},
		Edges: []Edge{
			{A: 0, B: 1, Class: 0},
			{A: 0, B: 2, Class: 1},
		},
	}
}

func TestOptimizeProducesConnectedLeftDeepPlan(t *testing.T) {
	p, err := Optimize(starQuery(100))
	if err != nil {
		t.Fatal(err)
	}
	order := p.Order(starQuery(100))
	if len(order) != 3 {
		t.Fatalf("order %v", order)
	}
	if p.Weighted <= 0 {
		t.Fatalf("weighted cost %f", p.Weighted)
	}
}

func TestSelectiveTableJoinsEarly(t *testing.T) {
	// §4: "ordering the operators so that the most selective operations
	// are pushed towards the bottom of the query tree." dimB keeps 1% of
	// 1000 tuples, so fact⋈dimB shrinks the intermediate result massively
	// and must happen before the dimA join.
	p, err := OptimizeHashOnly(starQuery(100))
	if err != nil {
		t.Fatal(err)
	}
	order := p.Order(starQuery(100))
	posB, posA := -1, -1
	for i, n := range order {
		switch n {
		case "dimB":
			posB = i
		case "dimA":
			posA = i
		}
	}
	if posB > posA {
		t.Fatalf("selective dimB joined after dimA: %v", order)
	}
}

func TestHashOnlyMatchesFullAtLargeMemory(t *testing.T) {
	q := starQuery(50000) // everything fits
	full, err := Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := OptimizeHashOnly(q)
	if err != nil {
		t.Fatal(err)
	}
	if hash.Weighted > full.Weighted*1.01 {
		t.Fatalf("hash-only plan %.2f worse than full %.2f", hash.Weighted, full.Weighted)
	}
	if hash.PlansConsidered >= full.PlansConsidered {
		t.Fatalf("hash-only considered %d plans, full %d — no search-space reduction",
			hash.PlansConsidered, full.PlansConsidered)
	}
	if hash.StatesExplored >= full.StatesExplored {
		t.Fatalf("hash-only explored %d states, full %d", hash.StatesExplored, full.StatesExplored)
	}
}

func TestFullPlannerPrefersHashJoins(t *testing.T) {
	// §4 premise: hashing is fastest with ample memory, so even the full
	// enumeration should choose hash joins at every step.
	p, err := Optimize(starQuery(50000))
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.leaf() {
			return
		}
		if n.Algorithm == join.SortMerge {
			t.Errorf("sort-merge chosen at large memory")
		}
		walk(n.Left)
	}
	walk(p.Root)
}

func TestCartesianProductAvoided(t *testing.T) {
	q := starQuery(100)
	p, err := Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Every join step must connect via an edge: rebuild masks and verify.
	var walk func(n *Node) int
	walk = func(n *Node) int {
		if n.leaf() {
			return 1 << n.Table
		}
		mask := walk(n.Left)
		if len(connecting(q, mask, n.Right)) == 0 {
			t.Errorf("cartesian step onto table %d", n.Right)
		}
		return mask | 1<<n.Right
	}
	walk(p.Root)
}

func TestValidation(t *testing.T) {
	bad := []Query{
		{},
		{Tables: []Table{{Name: "a", Tuples: 1, TuplesPerPage: 1, Width: 1}}, M: 1},
		{Tables: []Table{{Name: "a", Tuples: -1, TuplesPerPage: 1, Width: 1}}, M: 10},
		{Tables: []Table{{Name: "a", Tuples: 1, TuplesPerPage: 1, Width: 1, Selectivity: 2}}, M: 10},
		{Tables: []Table{{Name: "a", Tuples: 1, TuplesPerPage: 1, Width: 1}},
			Edges: []Edge{{A: 0, B: 5}}, M: 10},
	}
	for i, q := range bad {
		if _, err := Optimize(q); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCardinalityEstimates(t *testing.T) {
	q := starQuery(100)
	p, err := OptimizeHashOnly(q)
	if err != nil {
		t.Fatal(err)
	}
	// Final cardinality: 200000 * 10000/10000 * (10 filtered dimB rows ...)
	// rough bound: between 1 and |fact|.
	if p.Root.EstTuples < 1 || p.Root.EstTuples > 200000 {
		t.Fatalf("estimate %d out of sane range", p.Root.EstTuples)
	}
}

func TestSingleTableQuery(t *testing.T) {
	q := Query{
		M:      10,
		Tables: []Table{{Name: "only", Tuples: 100, TuplesPerPage: 10, Width: 40, Selectivity: 1}},
	}
	p, err := Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Root.leaf() || p.Weighted != 0 {
		t.Fatalf("single-table plan: %+v", p.Root)
	}
}
