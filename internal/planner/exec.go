package planner

import (
	"fmt"
	"sync/atomic"

	"mmdb/internal/heap"
	"mmdb/internal/join"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// ExecSource is the storage binding of a table: its heap file plus the
// column each join class maps to.
type ExecSource struct {
	File      *heap.File
	ClassCols map[int]int // join class -> column index in the table schema
}

var execSeq atomic.Uint64

// Execute runs the plan against the tables' bound heap files, returning
// the materialized result. Intermediate results are written uncharged (the
// §3 convention); the joins themselves charge the disk's clock normally.
func Execute(q Query, p *Plan) (*heap.File, error) {
	q = q.withDefaults()
	res, _, err := execNode(q, p.Root)
	return res, err
}

// execNode returns the node's materialized output and the class→column map
// of its output schema.
func execNode(q Query, n *Node) (*heap.File, map[int]int, error) {
	if n == nil {
		return nil, nil, fmt.Errorf("planner: nil plan node")
	}
	if n.leaf() {
		return execLeaf(q, n.Table)
	}
	left, leftCols, err := execNode(q, n.Left)
	if err != nil {
		return nil, nil, err
	}
	right, rightCols, err := execLeaf(q, n.Right)
	if err != nil {
		return nil, nil, err
	}
	classes := connecting(q, maskOf(n.Left), n.Right)
	if len(classes) == 0 {
		return nil, nil, fmt.Errorf("planner: executing a Cartesian product is not supported")
	}
	if len(classes) > 1 {
		return nil, nil, fmt.Errorf("planner: join step touches %d attribute classes; execution supports single-attribute steps", len(classes))
	}
	cl := classes[0]
	lc, ok := leftCols[cl]
	if !ok {
		return nil, nil, fmt.Errorf("planner: left side lacks a column for class %d", cl)
	}
	rc, ok := rightCols[cl]
	if !ok {
		return nil, nil, fmt.Errorf("planner: right side lacks a column for class %d", cl)
	}

	// Build side is the smaller input, as the algorithms assume |R|<=|S|.
	rFile, sFile := left, right
	rCol, sCol := lc, rc
	swapped := false
	if sFile.NumPages() < rFile.NumPages() {
		rFile, sFile = sFile, rFile
		rCol, sCol = rc, lc
		swapped = true
	}

	outSchema, combine, err := tuple.Concat(left.Schema(), right.Schema(), "l.", "r.")
	if err != nil {
		return nil, nil, err
	}
	disk := left.Disk()
	out, err := heap.Create(disk, fmt.Sprintf("plan.join.%d", execSeq.Add(1)), outSchema)
	if err != nil {
		return nil, nil, err
	}
	spec := join.Spec{R: rFile, S: sFile, RCol: rCol, SCol: sCol, M: q.M, F: q.Params.F, Parallelism: q.Parallelism, SortChunks: q.SortChunks, NoCacheKernels: q.NoCacheKernels}
	var emitErr error
	_, err = join.Run(n.Algorithm, spec, func(r, s tuple.Tuple) {
		l, rr := r, s
		if swapped {
			l, rr = s, r
		}
		if e := out.Append(combine(l, rr), simio.Uncharged); e != nil && emitErr == nil {
			emitErr = e
		}
	})
	if err != nil {
		return nil, nil, err
	}
	if emitErr != nil {
		return nil, nil, emitErr
	}
	if err := out.Flush(simio.Uncharged); err != nil {
		return nil, nil, err
	}

	// Secondary join classes on this step degrade to post-filters; with
	// single-attribute equi-joins per step (our queries) there are none.
	outCols := make(map[int]int, len(leftCols)+len(rightCols))
	for c, i := range leftCols {
		outCols[c] = i
	}
	lw := left.Schema().NumFields()
	for c, i := range rightCols {
		if _, dup := outCols[c]; !dup {
			outCols[c] = lw + i
		}
	}
	return out, outCols, nil
}

func execLeaf(q Query, ti int) (*heap.File, map[int]int, error) {
	t := q.Tables[ti]
	if t.Rel.File == nil {
		return nil, nil, fmt.Errorf("planner: table %s has no storage binding", t.Name)
	}
	cols := t.Rel.ClassCols
	if t.Filter == nil {
		return t.Rel.File, cols, nil
	}
	disk := t.Rel.File.Disk()
	out, err := heap.Create(disk, fmt.Sprintf("plan.scan.%d", execSeq.Add(1)), t.Rel.File.Schema())
	if err != nil {
		return nil, nil, err
	}
	scanErr := t.Rel.File.Scan(simio.Uncharged, func(tp tuple.Tuple) bool {
		if t.Filter(tp) {
			err = out.Append(tp.Clone(), simio.Uncharged)
		}
		return err == nil
	})
	if scanErr != nil {
		return nil, nil, scanErr
	}
	if err != nil {
		return nil, nil, err
	}
	if err := out.Flush(simio.Uncharged); err != nil {
		return nil, nil, err
	}
	return out, cols, nil
}

// maskOf reconstructs the table subset a sub-plan covers.
func maskOf(n *Node) int {
	if n == nil {
		return 0
	}
	if n.leaf() {
		return 1 << n.Table
	}
	return maskOf(n.Left) | 1<<n.Right
}
