// Package planner implements §4 access planning: Selinger-style dynamic
// programming over join orders with cost = W*|CPU| + |I/O|, using the §3
// analytic cost formulas to price each candidate join algorithm.
//
// It demonstrates the paper's observation quantitatively: when memory is
// large, hash-based algorithms win everywhere and their output order never
// matters, so the optimizer can drop "interesting order" bookkeeping and
// shrink its search space — Optimize (full Selinger with sort-order
// states) and OptimizeHashOnly (the §4 reduction) return plans of the same
// cost while exploring far fewer states.
package planner

import (
	"fmt"
	"math"
	"sort"

	"mmdb/internal/core"
	"mmdb/internal/cost"
	"mmdb/internal/join"
	"mmdb/internal/tuple"
)

// NoOrder marks a plan output with no useful sort order.
const NoOrder = -1

// Table describes one base relation after selections are pushed down to
// its scan: Selectivity scales its cardinality before any join touches it
// (the paper's "most selective operations ... pushed towards the bottom").
type Table struct {
	Name          string
	Tuples        int64
	TuplesPerPage int
	Width         int                    // tuple width in bytes
	Selectivity   float64                // fraction surviving the pushed-down selections (1 = none)
	Distinct      map[int]int64          // join-class -> distinct values of the table's column in that class
	Filter        func(tuple.Tuple) bool // optional executable predicate (Execute only)
	Rel           ExecSource             // optional storage binding (Execute only)
}

// Edge is one equi-join predicate between two tables; all columns joined
// transitively share a class.
type Edge struct {
	A, B  int // table indexes
	Class int // join attribute equivalence class
}

// Query is the optimizer input.
type Query struct {
	Tables   []Table
	Edges    []Edge
	PageSize int         // for intermediate-result page estimates; 0 means 4096
	M        int         // memory pages available per join
	Params   cost.Params // Table 2/3 hardware characterization
	W        float64     // CPU weight in W*CPU + IO (Selinger); 0 means 1
	// Parallelism is forwarded to every executed join's Spec (0 or 1 =
	// serial, negative = GOMAXPROCS). Plan *costs* are unaffected: the
	// virtual-clock charges are identical at every setting, so the
	// optimizer's choices do not depend on the worker count.
	Parallelism int
	// SortChunks is forwarded to every executed join's Spec: sort-merge's
	// run-formation decomposition (a plan knob — it changes the charges,
	// unlike Parallelism). The optimizer's analytic cost model does not
	// account for it, matching how GraceParts is also execution-only.
	SortChunks int
	// NoCacheKernels is forwarded to every executed join's Spec: it
	// selects the classic physical layouts instead of the cache-conscious
	// kernels. Counters — and therefore plan costs — are identical either
	// way; this exists so an engine-level escape hatch reaches planned
	// executions too.
	NoCacheKernels bool
}

func (q Query) withDefaults() Query {
	if q.PageSize == 0 {
		q.PageSize = 4096
	}
	if q.W == 0 {
		q.W = 1
	}
	if q.Params == (cost.Params{}) {
		q.Params = cost.DefaultParams()
	}
	return q
}

func (q Query) validate() error {
	if len(q.Tables) == 0 {
		return fmt.Errorf("planner: query with no tables")
	}
	if len(q.Tables) > 14 {
		return fmt.Errorf("planner: %d tables exceeds the DP limit", len(q.Tables))
	}
	if q.M < 2 {
		return fmt.Errorf("planner: need at least 2 pages of memory")
	}
	for i, t := range q.Tables {
		if t.Tuples < 0 || t.TuplesPerPage < 1 || t.Width < 1 {
			return fmt.Errorf("planner: table %d (%s) has invalid stats", i, t.Name)
		}
		if t.Selectivity < 0 || t.Selectivity > 1 {
			return fmt.Errorf("planner: table %d (%s) selectivity %g out of [0,1]", i, t.Name, t.Selectivity)
		}
	}
	for _, e := range q.Edges {
		if e.A < 0 || e.A >= len(q.Tables) || e.B < 0 || e.B >= len(q.Tables) || e.A == e.B {
			return fmt.Errorf("planner: invalid edge %+v", e)
		}
	}
	return nil
}

// Node is a plan tree node: a base table leaf or a join of a sub-plan with
// a base table (left-deep).
type Node struct {
	Table     int   // leaf table index, or -1
	Left      *Node // inner sub-plan
	Right     int   // right (probe-side) table index for joins
	Algorithm join.Algorithm

	EstTuples int64
	EstPages  int
	Width     int
	OrderedBy int // join class the output is sorted on, or NoOrder

	StepCost core.JoinCost // this join only
}

// leaf reports whether the node is a base-table scan.
func (n *Node) leaf() bool { return n.Table >= 0 }

// Plan is an optimized query plan.
type Plan struct {
	Root            *Node
	CPU, IO         float64 // cumulative seconds
	Weighted        float64 // W*CPU + IO
	StatesExplored  int     // DP states materialized
	PlansConsidered int     // (state, table, algorithm) candidates priced
}

// Order renders the join order as table names, build-first.
func (p *Plan) Order(q Query) []string {
	var out []string
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.leaf() {
			out = append(out, q.Tables[n.Table].Name)
			return
		}
		walk(n.Left)
		out = append(out, q.Tables[n.Right].Name)
	}
	walk(p.Root)
	return out
}

// Optimize runs the full Selinger enumeration: left-deep DP over table
// subsets, keeping the best sub-plan per (subset, output order) and
// pricing all four §3 join algorithms at each step.
func Optimize(q Query) (*Plan, error) {
	return optimize(q, []join.Algorithm{join.SortMerge, join.SimpleHash, join.GraceHash, join.HybridHash}, true)
}

// OptimizeHashOnly runs the §4 reduction: hybrid hash everywhere, no
// order states.
func OptimizeHashOnly(q Query) (*Plan, error) {
	return optimize(q, []join.Algorithm{join.HybridHash}, false)
}

type dpKey struct {
	mask  int
	order int
}

type dpVal struct {
	node     *Node
	cpu, io  float64
	weighted float64
}

func optimize(q Query, algos []join.Algorithm, trackOrders bool) (*Plan, error) {
	q = q.withDefaults()
	if err := q.validate(); err != nil {
		return nil, err
	}
	n := len(q.Tables)
	best := make(map[dpKey]dpVal)
	plan := &Plan{}

	put := func(key dpKey, val dpVal) {
		if cur, ok := best[key]; !ok || val.weighted < cur.weighted {
			if !ok {
				plan.StatesExplored++
			}
			best[key] = val
		}
	}

	for i := range q.Tables {
		put(dpKey{mask: 1 << i, order: NoOrder}, dpVal{node: leafNode(q, i)})
	}

	for mask := 1; mask < 1<<n; mask++ {
		for _, order := range ordersOf(q, trackOrders) {
			cur, ok := best[dpKey{mask: mask, order: order}]
			if !ok {
				continue
			}
			for t := 0; t < n; t++ {
				if mask&(1<<t) != 0 {
					continue
				}
				classes := connecting(q, mask, t)
				if len(classes) == 0 && mask != 0 && popcount(mask) < n {
					// Avoid Cartesian products unless forced; Selinger
					// does the same.
					if hasAnyEdge(q, mask) || hasAnyEdgeTo(q, t) {
						continue
					}
				}
				right := leafNode(q, t)
				for _, algo := range algos {
					plan.PlansConsidered++
					node, cpu, io := joinNodes(q, cur.node, right, classes, algo, order)
					val := dpVal{
						node: node,
						cpu:  cur.cpu + cpu,
						io:   cur.io + io,
					}
					val.weighted = q.W*val.cpu + val.io
					key := dpKey{mask: mask | 1<<t, order: node.OrderedBy}
					if !trackOrders {
						key.order = NoOrder
						node.OrderedBy = NoOrder
					}
					put(key, val)
				}
			}
		}
	}

	full := 1<<n - 1
	var win *dpVal
	for _, order := range ordersOf(q, trackOrders) {
		if v, ok := best[dpKey{mask: full, order: order}]; ok {
			if win == nil || v.weighted < win.weighted {
				vv := v
				win = &vv
			}
		}
	}
	if win == nil {
		return nil, fmt.Errorf("planner: no plan covers all tables")
	}
	plan.Root = win.node
	plan.CPU, plan.IO, plan.Weighted = win.cpu, win.io, win.weighted
	return plan, nil
}

func leafNode(q Query, i int) *Node {
	t := q.Tables[i]
	sel := t.Selectivity
	if sel == 0 {
		sel = 1
	}
	tuples := int64(float64(t.Tuples) * sel)
	if tuples < 1 && t.Tuples > 0 {
		tuples = 1
	}
	pages := int(math.Ceil(float64(tuples) / float64(t.TuplesPerPage)))
	if pages < 1 {
		pages = 1
	}
	return &Node{
		Table:     i,
		Right:     -1,
		EstTuples: tuples,
		EstPages:  pages,
		Width:     t.Width,
		OrderedBy: NoOrder,
	}
}

// ordersOf enumerates the order states the DP tracks.
func ordersOf(q Query, trackOrders bool) []int {
	if !trackOrders {
		return []int{NoOrder}
	}
	seen := map[int]bool{NoOrder: true}
	out := []int{NoOrder}
	for _, e := range q.Edges {
		if !seen[e.Class] {
			seen[e.Class] = true
			out = append(out, e.Class)
		}
	}
	sort.Ints(out)
	return out
}

// connecting returns the join classes linking table t to the subset mask.
func connecting(q Query, mask, t int) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range q.Edges {
		var other int
		switch {
		case e.A == t:
			other = e.B
		case e.B == t:
			other = e.A
		default:
			continue
		}
		if mask&(1<<other) != 0 && !seen[e.Class] {
			seen[e.Class] = true
			out = append(out, e.Class)
		}
	}
	sort.Ints(out)
	return out
}

func hasAnyEdge(q Query, mask int) bool {
	for _, e := range q.Edges {
		if mask&(1<<e.A) != 0 || mask&(1<<e.B) != 0 {
			return true
		}
	}
	return false
}

func hasAnyEdgeTo(q Query, t int) bool {
	for _, e := range q.Edges {
		if e.A == t || e.B == t {
			return true
		}
	}
	return false
}

// joinNodes prices joining left (the accumulated plan, sorted on
// leftOrder) with base table t via the given classes and algorithm, and
// estimates the output.
func joinNodes(q Query, left *Node, right *Node, classes []int, algo join.Algorithm, leftOrder int) (*Node, float64, float64) {
	t := q.Tables[right.Table]

	// Cardinality: |L ⋈ R| = |L|*|R| / max(d_L, d_R) per connecting class.
	out := float64(left.EstTuples) * float64(right.EstTuples)
	for _, cl := range classes {
		dl := classDistinct(q, left, cl)
		dr := t.Distinct[cl]
		if dr < 1 {
			dr = right.EstTuples
		}
		d := dl
		if dr > d {
			d = dr
		}
		if d > 1 {
			out /= float64(d)
		}
	}
	outTuples := int64(out)
	if outTuples < 1 {
		outTuples = 1
	}
	width := left.Width + t.Width
	tpp := (q.PageSize - 4) / width
	if tpp < 1 {
		tpp = 1
	}
	outPages := int(math.Ceil(float64(outTuples) / float64(tpp)))

	// Price the join with the smaller side as the build relation R.
	build, probe := left, right
	if probe.EstPages < build.EstPages {
		build, probe = probe, build
	}
	w := core.JoinWorkload{
		RPages:         maxInt(build.EstPages, 1),
		SPages:         maxInt(probe.EstPages, build.EstPages),
		RTuplesPerPage: maxInt(int(build.EstTuples/int64(maxInt(build.EstPages, 1))), 1),
		STuplesPerPage: maxInt(int(probe.EstTuples/int64(maxInt(probe.EstPages, 1))), 1),
	}
	var c core.JoinCost
	orderedOut := NoOrder
	switch algo {
	case join.SortMerge:
		c = core.SortMergeCost(q.Params, w, q.M)
		if len(classes) > 0 {
			cl := classes[0]
			if leftOrder == cl {
				// The accumulated side arrives sorted: skip its share of
				// run formation and run IO (the interesting-order payoff).
				frac := float64(left.EstPages) / float64(left.EstPages+right.EstPages)
				c.CPU *= 1 - frac/2
				c.IO *= 1 - frac
			}
			orderedOut = cl
		}
	case join.SimpleHash:
		c = core.SimpleHashCost(q.Params, w, q.M)
	case join.GraceHash:
		c = core.GraceHashCost(q.Params, w, q.M)
	case join.HybridHash:
		c = core.HybridHashCost(q.Params, w, q.M)
	default:
		panic(fmt.Sprintf("planner: unknown algorithm %v", algo))
	}

	node := &Node{
		Table:     -1,
		Left:      left,
		Right:     right.Table,
		Algorithm: algo,
		EstTuples: outTuples,
		EstPages:  maxInt(outPages, 1),
		Width:     width,
		OrderedBy: orderedOut,
		StepCost:  c,
	}
	return node, c.CPU, c.IO
}

// classDistinct estimates the distinct join-class values in a sub-plan:
// the minimum across its base tables participating in the class, capped by
// the sub-plan cardinality.
func classDistinct(q Query, n *Node, class int) int64 {
	var min int64 = math.MaxInt64
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.leaf() {
			if d, ok := q.Tables[n.Table].Distinct[class]; ok && d > 0 && d < min {
				min = d
			}
			return
		}
		walk(n.Left)
		if d, ok := q.Tables[n.Right].Distinct[class]; ok && d > 0 && d < min {
			min = d
		}
	}
	walk(n)
	if min == math.MaxInt64 || min > n.EstTuples {
		min = n.EstTuples
	}
	if min < 1 {
		min = 1
	}
	return min
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}
