package event

import (
	"testing"
	"time"
)

func TestOrderingAndTies(t *testing.T) {
	var s Sim
	var got []int
	s.At(3*time.Second, func() { got = append(got, 3) })
	s.At(time.Second, func() { got = append(got, 1) })
	s.At(time.Second, func() { got = append(got, 2) }) // tie: scheduling order
	end := s.Run()
	if end != 3*time.Second {
		t.Fatalf("final time %v", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order %v", got)
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var s Sim
	var times []time.Duration
	s.After(time.Second, func() {
		times = append(times, s.Now())
		s.After(2*time.Second, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 3*time.Second {
		t.Fatalf("times %v", times)
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	var s Sim
	s.At(5*time.Second, func() {
		s.At(time.Second, func() { // in the past: runs "now"
			if s.Now() != 5*time.Second {
				t.Fatalf("past event ran at %v", s.Now())
			}
		})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	var s Sim
	ran := 0
	s.At(time.Second, func() { ran++ })
	s.At(10*time.Second, func() { ran++ })
	s.RunUntil(5 * time.Second)
	if ran != 1 {
		t.Fatalf("ran %d events", ran)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("clock at %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d", s.Pending())
	}
	s.Run()
	if ran != 2 || s.Now() != 10*time.Second {
		t.Fatalf("ran=%d now=%v", ran, s.Now())
	}
}

func TestStepEmpty(t *testing.T) {
	var s Sim
	if s.Step() {
		t.Fatal("empty queue stepped")
	}
}
