// Package event provides a deterministic discrete-event simulator used by
// the §5 recovery experiments: transaction terminals, log device writes and
// checkpoint sweeps are events on one virtual timeline, so the paper's
// throughput arithmetic (10 ms per log page write, 100 vs 1000 tps) is
// reproduced exactly regardless of host speed.
package event

import (
	"container/heap"
	"time"
)

// Sim is a discrete-event simulator. The zero value is ready to use.
// Not safe for concurrent use: all events run on the caller's goroutine.
type Sim struct {
	now time.Duration
	q   eventQueue
	seq uint64
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn to run at virtual time t (not before now). Events at the
// same time run in scheduling order.
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.q, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (s *Sim) After(d time.Duration, fn func()) {
	s.At(s.now+d, fn)
}

// Step runs the next event. It reports false when the queue is empty.
func (s *Sim) Step() bool {
	if s.q.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.q).(*event)
	s.now = e.at
	e.fn()
	return true
}

// Run executes events until the queue is empty and returns the final time.
func (s *Sim) Run() time.Duration {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events with time <= t, then advances the clock to t.
func (s *Sim) RunUntil(t time.Duration) {
	for s.q.Len() > 0 && s.q[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.q.Len() }

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
