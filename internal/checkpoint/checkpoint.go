// Package checkpoint implements the §5.3 background checkpointer: a sweep
// process that writes dirty data pages to stable storage without quiescing
// transaction processing, keeping the disk arm as busy as possible. Each
// completed page write resets the page's entry in the stable-memory
// first-update table (§5.5), which bounds how far back recovery must read
// the log.
package checkpoint

import (
	"time"

	"mmdb/internal/event"
	"mmdb/internal/store"
	"mmdb/internal/wal"
)

// Snapshot is the on-disk database image accumulated by checkpointing.
type Snapshot struct {
	pages map[int][]byte
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{pages: make(map[int][]byte)}
}

// Install stores the image of page p.
func (s *Snapshot) Install(p int, img []byte) {
	s.pages[p] = append([]byte(nil), img...)
}

// Pages returns the snapshot's page images (shared; callers must not
// mutate).
func (s *Snapshot) Pages() map[int][]byte { return s.pages }

// Len returns the number of checkpointed pages.
func (s *Snapshot) Len() int { return len(s.pages) }

// Checkpointer sweeps dirty pages to a data disk.
type Checkpointer struct {
	sim  *event.Sim
	st   *store.Store
	log  *wal.Log
	disk *wal.Device
	snap *Snapshot

	active  bool
	writing bool

	// pending maps pages with an in-flight checkpoint write to the
	// first-update LSN their dirty entry carried at issue time. The store's
	// entry is cleared at issue so updates arriving during the write
	// re-dirty the page with their own LSN; if the machine crashes before
	// the write completes, the pending entry is what the stable table
	// still holds (the real system only resets the table on completion).
	pending map[int]wal.LSN

	// PagesWritten counts completed checkpoint page writes.
	PagesWritten int64

	// OnAdvance, when set, fires after each completed page write — the
	// recovery start point may have advanced, so the engine can republish
	// the segmented log's commit.meta horizon.
	OnAdvance func()
}

// New creates a checkpointer writing page images of st to disk. The WAL
// rule is enforced against log: a page is written only once every log
// record it reflects is durable.
func New(sim *event.Sim, st *store.Store, log *wal.Log, disk *wal.Device, snap *Snapshot) *Checkpointer {
	return &Checkpointer{sim: sim, st: st, log: log, disk: disk, snap: snap, pending: make(map[int]wal.LSN)}
}

// StableFirstUpdateTable returns the crash-durable first-update table: the
// store's live entries merged with entries whose checkpoint write has not
// completed. Recovery's redo lower bound is the minimum over this table.
func (c *Checkpointer) StableFirstUpdateTable() map[int]wal.LSN {
	out := make(map[int]wal.LSN)
	for _, p := range c.st.DirtyPages() {
		lsn, _ := c.st.FirstUpdateLSN(p)
		out[p] = lsn
	}
	for p, lsn := range c.pending {
		if cur, ok := out[p]; !ok || lsn < cur {
			out[p] = lsn
		}
	}
	return out
}

// RecoveryStartLSN returns the redo lower bound after a crash right now:
// the oldest entry in the stable first-update table, or ok=false when the
// snapshot is current.
func (c *Checkpointer) RecoveryStartLSN() (wal.LSN, bool) {
	var min wal.LSN
	found := false
	for _, lsn := range c.StableFirstUpdateTable() {
		if !found || lsn < min {
			min, found = lsn, true
		}
	}
	return min, found
}

// InitialSnapshot records every page's current image, the load-time
// checkpoint the paper's recovery scheme starts from.
func (c *Checkpointer) InitialSnapshot() {
	for p := 0; p < c.st.NumPages(); p++ {
		c.snap.Install(p, c.st.PageImage(p))
		c.st.Checkpointed(p)
	}
}

// Start begins the background sweep.
func (c *Checkpointer) Start() {
	c.active = true
	c.Kick()
}

// Stop halts the sweep after any in-flight write.
func (c *Checkpointer) Stop() {
	c.active = false
}

// Kick nudges the sweeper; the engine calls it when pages become dirty.
func (c *Checkpointer) Kick() {
	if !c.active || c.writing {
		return
	}
	c.next()
}

// next picks the dirty page with the oldest first-update LSN — the page
// holding back the recovery start point — captures its image, and writes
// it once the log is durable past the image's newest update (WAL rule).
func (c *Checkpointer) next() {
	pick := -1
	var oldest wal.LSN
	for _, p := range c.st.DirtyPages() {
		first, _ := c.st.FirstUpdateLSN(p)
		if pick == -1 || first < oldest {
			pick, oldest = p, first
		}
	}
	if pick == -1 {
		return
	}
	img := c.st.PageImage(pick)
	last := c.st.LastUpdateLSN(pick)
	c.pending[pick] = oldest
	c.st.Checkpointed(pick) // re-dirtying during the write starts a fresh entry
	c.writing = true
	c.writeWhenDurable(pick, img, last)
}

// writeWhenDurable issues the page write once every log record the image
// reflects is durable, polling the log horizon until then.
func (c *Checkpointer) writeWhenDurable(pick int, img []byte, last wal.LSN) {
	if c.log.DurableLSN() < last {
		c.sim.After(time.Millisecond, func() {
			if !c.active {
				// Restore the dirty entry so a later restart retries the
				// page; the write never happened.
				c.writing = false
				return
			}
			c.writeWhenDurable(pick, img, last)
		})
		return
	}
	done, ok := c.disk.Write(c.sim.Now(), img)
	if !ok {
		// The checkpoint device lost the write. The snapshot keeps its old
		// image (still consistent with its first-update entry), so recovery
		// simply replays more log; the checkpointer stops making progress.
		c.writing = false
		return
	}
	c.sim.At(done, func() {
		c.snap.Install(pick, img)
		delete(c.pending, pick)
		c.PagesWritten++
		c.writing = false
		if c.OnAdvance != nil {
			c.OnAdvance()
		}
		c.Kick()
	})
}
