package checkpoint

import (
	"bytes"
	"testing"
	"time"

	"mmdb/internal/event"
	"mmdb/internal/store"
	"mmdb/internal/wal"
)

func setup(t *testing.T) (*event.Sim, *store.Store, *wal.Log, *wal.Device, *Snapshot, *Checkpointer) {
	t.Helper()
	sim := &event.Sim{}
	st, err := store.New(64, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	logDev := wal.NewDevice("log", time.Millisecond)
	l, err := wal.NewLog(sim, wal.Config{Policy: wal.GroupCommit, Devices: []*wal.Device{logDev}})
	if err != nil {
		t.Fatal(err)
	}
	snap := NewSnapshot()
	dataDev := wal.NewDevice("data", 5*time.Millisecond)
	c := New(sim, st, l, dataDev, snap)
	return sim, st, l, dataDev, snap, c
}

func TestInitialSnapshotCoversAllPages(t *testing.T) {
	_, st, _, _, snap, c := setup(t)
	c.InitialSnapshot()
	if snap.Len() != st.NumPages() {
		t.Fatalf("snapshot has %d of %d pages", snap.Len(), st.NumPages())
	}
	if len(st.DirtyPages()) != 0 {
		t.Fatal("initial snapshot left dirty pages")
	}
}

func TestSweepWritesDirtyPagesOldestFirst(t *testing.T) {
	sim, st, l, _, snap, c := setup(t)
	c.InitialSnapshot()

	// Make the log durable past the updates so the WAL rule admits them.
	write := func(rec uint64, lsnHint byte) wal.LSN {
		lsn, _ := l.Append(wal.Record{Txn: 1, Type: wal.Update, Rec: rec,
			Old: make([]byte, 8), New: []byte{lsnHint, 0, 0, 0, 0, 0, 0, 0}})
		st.Write(rec, []byte{lsnHint, 0, 0, 0, 0, 0, 0, 0}, lsn)
		return lsn
	}
	write(50, 5) // page 6 dirtied first (oldest entry)
	write(2, 9)  // page 0
	l.AppendCommit(1, nil)
	c.Start()
	sim.Run()

	if got := c.PagesWritten; got != 2 {
		t.Fatalf("checkpointed %d pages", got)
	}
	if len(st.DirtyPages()) != 0 {
		t.Fatal("dirty pages remain after sweep")
	}
	// Snapshot now reflects the updates.
	img := snap.Pages()[6]
	if !bytes.Equal(img[2*8:2*8+8], []byte{5, 0, 0, 0, 0, 0, 0, 0}) {
		t.Fatalf("snapshot page 6 = %x", img)
	}
	if _, ok := c.RecoveryStartLSN(); ok {
		t.Fatal("recovery start present with a clean store")
	}
}

func TestWALRuleDelaysPageWrite(t *testing.T) {
	sim, st, l, dataDev, _, c := setup(t)
	c.InitialSnapshot()
	// Update whose log record is buffered but not yet durable.
	lsn, _ := l.Append(wal.Record{Txn: 1, Type: wal.Update, Rec: 1, Old: make([]byte, 8), New: make([]byte, 8)})
	st.Write(1, make([]byte, 8), lsn)
	c.Start()
	sim.RunUntil(500 * time.Microsecond) // log write (1ms) not yet durable
	if dataDev.PagesWritten() != 0 {
		t.Fatal("page written before its log record was durable")
	}
	l.Flush()
	sim.Run()
	if dataDev.PagesWritten() != 1 {
		t.Fatalf("page not written after log became durable (%d)", dataDev.PagesWritten())
	}
}

func TestPendingEntrySurvivesCrashMidWrite(t *testing.T) {
	sim, st, l, _, _, c := setup(t)
	c.InitialSnapshot()
	lsn, _ := l.Append(wal.Record{Txn: 1, Type: wal.Update, Rec: 1, Old: make([]byte, 8), New: make([]byte, 8)})
	st.Write(1, make([]byte, 8), lsn)
	l.AppendCommit(1, nil)
	c.Start()
	// Run until the log is durable and the page write has been issued but
	// not completed (data device takes 5ms; log 1ms).
	sim.RunUntil(3 * time.Millisecond)
	if len(st.DirtyPages()) != 0 {
		t.Fatal("expected the dirty entry cleared at issue")
	}
	table := c.StableFirstUpdateTable()
	if got, ok := table[0]; !ok || got != lsn {
		t.Fatalf("pending entry lost: %v", table)
	}
	start, ok := c.RecoveryStartLSN()
	if !ok || start != lsn {
		t.Fatalf("recovery start %d/%v", start, ok)
	}
	sim.Run()
	if _, ok := c.RecoveryStartLSN(); ok {
		t.Fatal("entry remains after write completion")
	}
}

func TestUpdatesDuringWriteStayDirty(t *testing.T) {
	sim, st, l, _, _, c := setup(t)
	c.InitialSnapshot()
	lsn, _ := l.Append(wal.Record{Txn: 1, Type: wal.Update, Rec: 1, Old: make([]byte, 8), New: []byte{1, 0, 0, 0, 0, 0, 0, 0}})
	st.Write(1, []byte{1, 0, 0, 0, 0, 0, 0, 0}, lsn)
	l.AppendCommit(1, nil)
	c.Start()
	// While the checkpoint write is in flight, update the same page again.
	sim.At(2*time.Millisecond, func() {
		lsn2, _ := l.Append(wal.Record{Txn: 2, Type: wal.Update, Rec: 2, Old: make([]byte, 8), New: []byte{2, 0, 0, 0, 0, 0, 0, 0}})
		st.Write(2, []byte{2, 0, 0, 0, 0, 0, 0, 0}, lsn2)
		l.AppendCommit(2, nil)
	})
	sim.Run()
	// The sweep keeps running (Kick on completion), so eventually both
	// versions are checkpointed and nothing is dirty.
	if len(st.DirtyPages()) != 0 {
		t.Fatalf("dirty pages remain: %v", st.DirtyPages())
	}
	if c.PagesWritten < 2 {
		t.Fatalf("page 0 should have been written twice, got %d writes", c.PagesWritten)
	}
}

func TestStopHaltsSweep(t *testing.T) {
	sim, st, l, dataDev, _, c := setup(t)
	c.InitialSnapshot()
	lsn, _ := l.Append(wal.Record{Txn: 1, Type: wal.Update, Rec: 1, Old: make([]byte, 8), New: make([]byte, 8)})
	st.Write(1, make([]byte, 8), lsn)
	c.Stop()
	c.Kick()
	sim.Run()
	if dataDev.PagesWritten() != 0 {
		t.Fatal("stopped checkpointer wrote pages")
	}
}
