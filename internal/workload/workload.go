// Package workload generates synthetic relations and transaction streams
// for the experiments: Wisconsin-style keyed relations for the access
// method and join studies, and a Gray-style banking (debit/credit)
// transaction mix for the §5 recovery study.
//
// The paper evaluated on synthetic relations of 40 100-byte tuples per
// 4 KB page; Generate reproduces that shape by default.
package workload

import (
	"fmt"
	"math/rand"

	"mmdb/internal/heap"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// RelationSpec describes a synthetic keyed relation.
type RelationSpec struct {
	Name         string
	Tuples       int
	KeyDomain    int64   // keys are uniform over [0, KeyDomain); 0 means a random permutation of 0..Tuples-1 (unique keys)
	ZipfS        float64 // >1 skews keys Zipf(s) over the domain — §3.3's "bounded density" caveat stressor
	PayloadWidth int     // bytes of filler; 0 means 92 (100-byte tuples, the paper's L)
	Seed         int64
}

// Schema returns the relation's schema: an int64 key plus fixed-width
// filler.
func (s RelationSpec) Schema() *tuple.Schema {
	w := s.PayloadWidth
	if w == 0 {
		w = 92
	}
	return tuple.MustSchema(
		tuple.Field{Name: "key", Kind: tuple.Int64},
		tuple.Field{Name: "pad", Kind: tuple.String, Size: w},
	)
}

// KeyCol is the column index of the key in generated relations.
const KeyCol = 0

// Generate materializes the relation as a heap file on disk. Loading is
// uncharged, matching the paper's convention of excluding the cost of the
// initial relation reads.
func Generate(disk *simio.Disk, s RelationSpec) (*heap.File, error) {
	if s.Tuples < 0 {
		return nil, fmt.Errorf("workload: negative tuple count %d", s.Tuples)
	}
	schema := s.Schema()
	f, err := heap.Create(disk, s.Name, schema)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	keys := make([]int64, s.Tuples)
	switch {
	case s.KeyDomain == 0:
		for i := range keys {
			keys[i] = int64(i)
		}
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	case s.ZipfS > 1:
		z := rand.NewZipf(rng, s.ZipfS, 1, uint64(s.KeyDomain-1))
		if z == nil {
			return nil, fmt.Errorf("workload: invalid zipf parameters (s=%g, domain=%d)", s.ZipfS, s.KeyDomain)
		}
		for i := range keys {
			keys[i] = int64(z.Uint64())
		}
	default:
		for i := range keys {
			keys[i] = rng.Int63n(s.KeyDomain)
		}
	}
	pad := make([]byte, schema.Field(1).Size)
	for i, k := range keys {
		for j := range pad {
			pad[j] = byte('a' + (i+j)%26)
		}
		t := schema.MustEncode(tuple.IntValue(k), tuple.StringValue(string(pad)))
		if err := f.Append(t, simio.Uncharged); err != nil {
			return nil, err
		}
	}
	if err := f.Flush(simio.Uncharged); err != nil {
		return nil, err
	}
	return f, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(disk *simio.Disk, s RelationSpec) *heap.File {
	f, err := Generate(disk, s)
	if err != nil {
		panic(err)
	}
	return f
}
