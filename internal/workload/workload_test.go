package workload

import (
	"testing"

	"mmdb/internal/cost"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

func disk() *simio.Disk {
	return simio.NewDisk(cost.NewClock(cost.DefaultParams()), 4096)
}

func TestDefaultShapeMatchesTable2(t *testing.T) {
	// 100-byte tuples, 40 per 4096-byte page.
	f := MustGenerate(disk(), RelationSpec{Name: "r", Tuples: 400, Seed: 1})
	if f.Schema().Width() != 100 {
		t.Fatalf("width = %d", f.Schema().Width())
	}
	if f.TuplesPerPage() != 40 {
		t.Fatalf("tuples/page = %d", f.TuplesPerPage())
	}
	if f.NumPages() != 10 {
		t.Fatalf("pages = %d", f.NumPages())
	}
}

func TestUniquePermutationKeys(t *testing.T) {
	f := MustGenerate(disk(), RelationSpec{Name: "r", Tuples: 500, Seed: 2})
	seen := make(map[int64]bool)
	sc := f.Schema()
	f.Scan(simio.Uncharged, func(tp tuple.Tuple) bool {
		seen[sc.Int(tp, KeyCol)] = true
		return true
	})
	if len(seen) != 500 {
		t.Fatalf("%d distinct keys of 500", len(seen))
	}
	for k := range seen {
		if k < 0 || k >= 500 {
			t.Fatalf("key %d outside permutation range", k)
		}
	}
}

func TestBoundedDomainKeys(t *testing.T) {
	f := MustGenerate(disk(), RelationSpec{Name: "r", Tuples: 500, KeyDomain: 7, Seed: 3})
	sc := f.Schema()
	f.Scan(simio.Uncharged, func(tp tuple.Tuple) bool {
		if k := sc.Int(tp, KeyCol); k < 0 || k >= 7 {
			t.Fatalf("key %d out of domain", k)
		}
		return true
	})
}

func TestDeterminism(t *testing.T) {
	a := MustGenerate(disk(), RelationSpec{Name: "r", Tuples: 100, KeyDomain: 50, Seed: 9})
	b := MustGenerate(disk(), RelationSpec{Name: "r", Tuples: 100, KeyDomain: 50, Seed: 9})
	var ka, kb []int64
	a.Scan(simio.Uncharged, func(tp tuple.Tuple) bool {
		ka = append(ka, a.Schema().Int(tp, 0))
		return true
	})
	b.Scan(simio.Uncharged, func(tp tuple.Tuple) bool {
		kb = append(kb, b.Schema().Int(tp, 0))
		return true
	})
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatal("same seed produced different relations")
		}
	}
}

func TestZipfKeysAreSkewed(t *testing.T) {
	f := MustGenerate(disk(), RelationSpec{Name: "z", Tuples: 5000, KeyDomain: 1000, ZipfS: 1.5, Seed: 6})
	counts := map[int64]int{}
	sc := f.Schema()
	f.Scan(simio.Uncharged, func(tp tuple.Tuple) bool {
		k := sc.Int(tp, KeyCol)
		if k < 0 || k >= 1000 {
			t.Fatalf("zipf key %d out of domain", k)
		}
		counts[k]++
		return true
	})
	// Key 0 should dominate heavily under Zipf(1.5).
	if counts[0] < 500 {
		t.Fatalf("zipf head key appeared only %d times", counts[0])
	}
	if len(counts) < 20 {
		t.Fatalf("zipf tail too thin: %d distinct keys", len(counts))
	}
}

func TestNegativeCountRejected(t *testing.T) {
	if _, err := Generate(disk(), RelationSpec{Name: "r", Tuples: -1}); err == nil {
		t.Fatal("negative tuple count accepted")
	}
}

func TestGenerationIsUncharged(t *testing.T) {
	d := disk()
	MustGenerate(d, RelationSpec{Name: "r", Tuples: 1000, Seed: 4})
	if c := d.Clock().Counters(); c.SeqIOs+c.RandIOs != 0 {
		t.Fatalf("generation charged IO: %+v", c)
	}
}
