package core

import (
	"fmt"
	"math"

	"mmdb/internal/cost"
)

// Figure1Point is one x-position of Figure 1: the four algorithm costs at a
// given memory-to-relation ratio.
type Figure1Point struct {
	Ratio      float64 // |M| / (|R|*F), the Figure 1 horizontal axis
	M          int     // pages of memory
	SortMerge  JoinCost
	SimpleHash JoinCost
	GraceHash  JoinCost
	HybridHash JoinCost
}

// Best returns the name of the cheapest algorithm at this point.
func (pt Figure1Point) Best() string {
	best, name := pt.SortMerge.Total(), "sort-merge"
	if t := pt.SimpleHash.Total(); t < best {
		best, name = t, "simple-hash"
	}
	if t := pt.GraceHash.Total(); t < best {
		best, name = t, "grace-hash"
	}
	if t := pt.HybridHash.Total(); t < best {
		best, name = t, "hybrid-hash"
	}
	_ = best
	return name
}

// Figure1 evaluates all four cost formulas over a grid of memory ratios.
// Ratios below sqrt(|S|*F)/(|R|*F) violate the paper's two-pass assumption
// and are skipped.
func Figure1(p cost.Params, w JoinWorkload, ratios []float64) ([]Figure1Point, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	minM := MinMemoryPages(p, w)
	var out []Figure1Point
	for _, r := range ratios {
		m := int(math.Round(r * float64(w.RPages) * p.F))
		if m < minM {
			continue
		}
		out = append(out, Figure1Point{
			Ratio:      r,
			M:          m,
			SortMerge:  SortMergeCost(p, w, m),
			SimpleHash: SimpleHashCost(p, w, m),
			GraceHash:  GraceHashCost(p, w, m),
			HybridHash: HybridHashCost(p, w, m),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no ratio in the grid satisfies |M| >= sqrt(|S|*F)")
	}
	return out, nil
}

// DefaultRatios returns the Figure 1 horizontal axis grid.
func DefaultRatios() []float64 {
	var rs []float64
	for r := 0.025; r <= 1.0001; r += 0.025 {
		rs = append(rs, math.Round(r*1000)/1000)
	}
	return rs
}

// Table3Setting is one corner of the Table 3 sensitivity box.
type Table3Setting struct {
	Name   string
	Params cost.Params
	W      JoinWorkload
}

// Table3Outcome summarizes the qualitative claims checked per setting.
type Table3Outcome struct {
	Setting Table3Setting
	// HybridWorstRank is the worst rank hybrid hash takes across the ratio
	// grid (1 = always cheapest). The paper's claim is that the relative
	// positioning of Figure 1 is preserved: hybrid at or near the top.
	HybridWorstRank int
	// HybridBestShare is the fraction of grid points where hybrid is
	// strictly cheapest or tied within 1%.
	HybridBestShare float64
	// SortMergeBeatenShare is the fraction of grid points where hybrid
	// beats sort-merge (the "hashing wins above sqrt(|S|*F)" claim; the
	// whole grid satisfies that bound, so this should be 1).
	SortMergeBeatenShare float64
}

// Table3Sweep evaluates the Figure 1 grid at every setting and summarizes
// whether the qualitative ranking holds.
func Table3Sweep(settings []Table3Setting, ratios []float64) ([]Table3Outcome, error) {
	var out []Table3Outcome
	for _, s := range settings {
		pts, err := Figure1(s.Params, s.W, ratios)
		if err != nil {
			return nil, fmt.Errorf("core: setting %q: %w", s.Name, err)
		}
		o := Table3Outcome{Setting: s, HybridWorstRank: 1}
		bestCount, beatSM := 0, 0
		for _, pt := range pts {
			hy := pt.HybridHash.Total()
			rank := 1
			for _, other := range []float64{pt.SortMerge.Total(), pt.SimpleHash.Total(), pt.GraceHash.Total()} {
				if other < hy*0.999 {
					rank++
				}
			}
			if rank > o.HybridWorstRank {
				o.HybridWorstRank = rank
			}
			if rank == 1 || hy <= 1.01*minOf(pt.SortMerge.Total(), pt.SimpleHash.Total(), pt.GraceHash.Total()) {
				bestCount++
			}
			if hy < pt.SortMerge.Total() {
				beatSM++
			}
		}
		o.HybridBestShare = float64(bestCount) / float64(len(pts))
		o.SortMergeBeatenShare = float64(beatSM) / float64(len(pts))
		out = append(out, o)
	}
	return out, nil
}

func minOf(xs ...float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Table3Settings returns the corner settings of the paper's Table 3
// parameter box, plus the Table 2 baseline.
func Table3Settings() []Table3Setting {
	base := cost.DefaultParams()
	w := Table2Workload()
	mk := func(name string, mut func(*cost.Params, *JoinWorkload)) Table3Setting {
		p, ww := base, w
		mut(&p, &ww)
		return Table3Setting{Name: name, Params: p, W: ww}
	}
	return []Table3Setting{
		{Name: "table2-baseline", Params: base, W: w},
		mk("cpu-fast", func(p *cost.Params, _ *JoinWorkload) {
			p.Comp, p.Hash, p.Move, p.Swap = 1000, 2000, 10000, 20000 // ns
		}),
		mk("cpu-slow", func(p *cost.Params, _ *JoinWorkload) {
			p.Comp, p.Hash, p.Move, p.Swap = 10000, 50000, 50000, 250000 // ns
		}),
		mk("io-fast", func(p *cost.Params, _ *JoinWorkload) {
			p.IOSeq, p.IORand = 5e6, 15e6 // ns
		}),
		mk("io-slow", func(p *cost.Params, _ *JoinWorkload) {
			p.IOSeq, p.IORand = 10e6, 35e6 // ns
		}),
		mk("fudge-low", func(p *cost.Params, _ *JoinWorkload) { p.F = 1.0 }),
		mk("fudge-high", func(p *cost.Params, _ *JoinWorkload) { p.F = 1.4 }),
		mk("s-large", func(_ *cost.Params, w *JoinWorkload) { w.SPages = 200000 }),
		mk("r-small-tuples", func(_ *cost.Params, w *JoinWorkload) {
			w.RPages = 2500 // 100,000 tuples at 40/page
		}),
		mk("r-many-tuples", func(_ *cost.Params, w *JoinWorkload) {
			w.RPages = 25000
			w.SPages = 25000 // 1,000,000 tuples at 40/page
		}),
	}
}
