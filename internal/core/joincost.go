package core

import (
	"fmt"
	"math"
	"time"

	"mmdb/internal/cost"
)

// JoinWorkload characterizes the two relations of a §3 join in the paper's
// units.
type JoinWorkload struct {
	RPages, SPages                 int // |R|, |S|
	RTuplesPerPage, STuplesPerPage int
}

// Table2Workload returns the Figure 1 workload: |R| = |S| = 10,000 pages at
// 40 tuples per page.
func Table2Workload() JoinWorkload {
	return JoinWorkload{RPages: 10000, SPages: 10000, RTuplesPerPage: 40, STuplesPerPage: 40}
}

// RTuples returns ||R||.
func (w JoinWorkload) RTuples() float64 { return float64(w.RPages * w.RTuplesPerPage) }

// STuples returns ||S||.
func (w JoinWorkload) STuples() float64 { return float64(w.SPages * w.STuplesPerPage) }

// Validate checks the workload and the paper's standing assumption
// |R| <= |S|.
func (w JoinWorkload) Validate() error {
	if w.RPages < 1 || w.SPages < 1 || w.RTuplesPerPage < 1 || w.STuplesPerPage < 1 {
		return fmt.Errorf("core: workload dimensions must be positive: %+v", w)
	}
	if w.RPages > w.SPages {
		return fmt.Errorf("core: the paper assumes |R| <= |S| (got |R|=%d, |S|=%d)", w.RPages, w.SPages)
	}
	return nil
}

// JoinCost is an analytic cost broken into CPU and IO seconds.
type JoinCost struct {
	CPU float64 // seconds
	IO  float64 // seconds
}

// Total returns CPU+IO in seconds (the paper assumes no CPU/IO overlap).
func (c JoinCost) Total() float64 { return c.CPU + c.IO }

// Duration returns the total as a time.Duration.
func (c JoinCost) Duration() time.Duration {
	return time.Duration(c.Total() * float64(time.Second))
}

func secs(d time.Duration) float64 { return d.Seconds() }

// log2c returns log2(x) clamped below at 0 (a queue of one element costs
// nothing to maintain).
func log2c(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

// SortMergeCost is the §3.4 formula. Run formation inserts every tuple
// into a priority queue of the tuples that fit in memory; runs are written
// sequentially and read back with random IO; the final merge drives a
// selection tree with one entry per run; the merging join compares each
// surviving pair once.
//
// When both relations fit in memory the runs are never written, which is
// the paper's "above a ratio of 1.0 sort-merge improves to approximately
// 900 seconds" regime.
func SortMergeCost(p cost.Params, w JoinWorkload, m int) JoinCost {
	rt, st := w.RTuples(), w.STuples()
	cs := secs(p.Comp) + secs(p.Swap)

	memR := float64(m) * float64(w.RTuplesPerPage) / p.F // queue capacity in R tuples
	memS := float64(m) * float64(w.STuplesPerPage) / p.F

	inMemory := float64(w.RPages)*p.F <= float64(m) && float64(w.SPages)*p.F <= float64(m)
	if inMemory {
		cpu := (rt*log2c(rt) + st*log2c(st)) * cs
		cpu += (rt + st) * secs(p.Comp) // join the merged streams
		return JoinCost{CPU: cpu}
	}

	// Phase 1: form runs of ~2*|M| pages with replacement selection.
	cpu := (rt*log2c(math.Min(rt, memR)) + st*log2c(math.Min(st, memS))) * cs
	io := float64(w.RPages+w.SPages) * secs(p.IOSeq) // write runs sequentially

	// Phase 2: merge all runs at once (guaranteed by |M| >= sqrt(|S|*F)),
	// reading run pages with random IO, and join the merged outputs.
	runsR := math.Max(1, math.Ceil(float64(w.RPages)*p.F/(2*float64(m))))
	runsS := math.Max(1, math.Ceil(float64(w.SPages)*p.F/(2*float64(m))))
	cpu += (rt*log2c(runsR) + st*log2c(runsS)) * cs
	io += float64(w.RPages+w.SPages) * secs(p.IORand)
	cpu += (rt + st) * secs(p.Comp)
	return JoinCost{CPU: cpu, IO: io}
}

// SimpleHashCost is the §3.5 formula. A = ceil(|R|*F/|M|) passes; each
// pass keeps |M|/F pages of R tuples resident and passes the rest over to
// disk, rereading them next pass.
func SimpleHashCost(p cost.Params, w JoinWorkload, m int) JoinCost {
	rt, st := w.RTuples(), w.STuples()
	hm := secs(p.Hash) + secs(p.Move)

	passes := math.Ceil(float64(w.RPages) * p.F / float64(m))
	memR := float64(m) * float64(w.RTuplesPerPage) / p.F // R tuples resident per pass

	// Passed-over tuple volume summed over passes 1..A-1:
	// sum_i (||R|| - i*{M}R) and the proportional share of S.
	var passedR, passedS float64
	for i := 1.0; i < passes; i++ {
		rRem := rt - i*memR
		if rRem < 0 {
			rRem = 0
		}
		passedR += rRem
		passedS += st * rRem / rt
	}

	cpu := rt*hm +
		st*(secs(p.Hash)+p.F*secs(p.Comp)) +
		passedR*hm +
		passedS*hm

	pagesR := passedR / float64(w.RTuplesPerPage)
	pagesS := passedS / float64(w.STuplesPerPage)
	io := (pagesR + pagesS) * 2 * secs(p.IOSeq) // write then read passed-over tuples
	return JoinCost{CPU: cpu, IO: io}
}

// GraceHashCost is the §3.6 formula: both relations are fully partitioned
// to disk (random writes from the per-bucket output buffers, sequential
// reads in phase two) and every tuple is hashed once per phase.
func GraceHashCost(p cost.Params, w JoinWorkload, m int) JoinCost {
	rt, st := w.RTuples(), w.STuples()
	_ = m                         // GRACE's cost is independent of memory size once |M| >= sqrt(|S|*F)
	cpu := (rt+st)*secs(p.Hash) + // phase 1: hash to partition
		(rt+st)*secs(p.Move) + // move to output buffers
		(rt+st)*secs(p.Hash) + // phase 2: hash to build/probe
		st*p.F*secs(p.Comp) + // probe for each tuple of S
		rt*secs(p.Move) // move tuples into the hash tables
	io := float64(w.RPages+w.SPages)*secs(p.IORand) + // write from output buffers
		float64(w.RPages+w.SPages)*secs(p.IOSeq) // read sets into memory
	return JoinCost{CPU: cpu, IO: io}
}

// HybridHashCost is the §3.7 formula, with q = |R0|/|R| the fraction of R
// whose hash table stays resident. Per the paper's footnote, when there is
// only one output buffer (|M| > |R|*F/2) the IOrand term for partition
// writes becomes IOseq, producing the Figure 1 discontinuity at 0.5.
func HybridHashCost(p cost.Params, w JoinWorkload, m int) JoinCost {
	rt, st := w.RTuples(), w.STuples()
	rf := float64(w.RPages) * p.F
	mf := float64(m)

	q := 1.0
	buffers := 0
	if rf > mf {
		b := math.Ceil((rf - mf) / (mf - 1))
		if b < 1 {
			b = 1
		}
		buffers = int(b)
		q = (mf - b) / rf
		if q < 0 {
			q = 0
		}
	}

	cpu := (rt+st)*secs(p.Hash) + // partition R and S
		(rt+st)*(1-q)*secs(p.Move) + // move tuples to output buffers
		(rt+st)*(1-q)*secs(p.Hash) + // build hash tables for R, find probe site for S
		st*p.F*secs(p.Comp) + // probe for each tuple of S
		rt*secs(p.Move) // move tuples to hash tables for R

	writeIO := secs(p.IORand)
	if buffers <= 1 {
		writeIO = secs(p.IOSeq)
	}
	io := float64(w.RPages+w.SPages)*(1-q)*writeIO + // write from output buffers
		float64(w.RPages+w.SPages)*(1-q)*secs(p.IOSeq) // read sets into memory
	return JoinCost{CPU: cpu, IO: io}
}

// MinMemoryPages returns the paper's standing assumption sqrt(|S|*F),
// the least memory for which all four algorithms need at most two passes.
func MinMemoryPages(p cost.Params, w JoinWorkload) int {
	return int(math.Ceil(math.Sqrt(float64(w.SPages) * p.F)))
}
