package core

import (
	"math"
	"testing"
	"testing/quick"

	"mmdb/internal/cost"
)

func table2Points(t *testing.T) []Figure1Point {
	t.Helper()
	pts, err := Figure1(cost.DefaultParams(), Table2Workload(), DefaultRatios())
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func TestFigure1HybridDominatesAtLowMemory(t *testing.T) {
	// Paper: "the Hybrid algorithm is preferable to all others over a
	// large range of parameter values"; at small ratios it must beat
	// everything.
	for _, pt := range table2Points(t) {
		if pt.Ratio > 0.3 {
			continue
		}
		hy := pt.HybridHash.Total()
		for name, c := range map[string]JoinCost{
			"sort-merge": pt.SortMerge, "simple-hash": pt.SimpleHash, "grace-hash": pt.GraceHash,
		} {
			if hy > c.Total()*1.001 {
				t.Errorf("ratio %.3f: hybrid %.1fs should beat %s %.1fs", pt.Ratio, hy, name, c.Total())
			}
		}
	}
}

func TestFigure1HashBeatsSortMergeEverywhere(t *testing.T) {
	// Paper: "once the size of main memory exceeds the square root of the
	// size of the relations ... the fastest algorithms ... are based on
	// hashing". The whole Figure 1 grid satisfies the memory bound.
	for _, pt := range table2Points(t) {
		if pt.HybridHash.Total() >= pt.SortMerge.Total() {
			t.Errorf("ratio %.3f: hybrid %.1fs not below sort-merge %.1fs",
				pt.Ratio, pt.HybridHash.Total(), pt.SortMerge.Total())
		}
	}
}

func TestFigure1SortMergeShape(t *testing.T) {
	pts := table2Points(t)
	// Flat below 1.0 (IO bound), improving to ~900s once both relations
	// sort in memory.
	var below, at1 float64
	for _, pt := range pts {
		if pt.Ratio == 0.5 {
			below = pt.SortMerge.Total()
		}
		if pt.Ratio == 1.0 {
			at1 = pt.SortMerge.Total()
		}
	}
	if below < 1400 || below > 1800 {
		t.Errorf("sort-merge at ratio 0.5 = %.1fs, expected ~1600s", below)
	}
	if at1 < 700 || at1 > 1100 {
		t.Errorf("sort-merge at ratio 1.0 = %.1fs, expected ~900s (paper: 'improve to approximately 900 seconds')", at1)
	}
	if at1 >= below {
		t.Errorf("sort-merge must improve at full memory: %.1f -> %.1f", below, at1)
	}
}

func TestFigure1GraceFlat(t *testing.T) {
	pts := table2Points(t)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, pt := range pts {
		v := pt.GraceHash.Total()
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if (hi-lo)/lo > 0.01 {
		t.Errorf("grace should be memory-insensitive: min %.1f max %.1f", lo, hi)
	}
	if lo < 600 || hi > 900 {
		t.Errorf("grace total %.1f..%.1f outside the expected ~740s band", lo, hi)
	}
}

func TestFigure1SimpleHashCollapsesAtSmallMemory(t *testing.T) {
	pts := table2Points(t)
	first := pts[0]
	if first.SimpleHash.Total() < 4*first.HybridHash.Total() {
		t.Errorf("simple hash at ratio %.3f = %.1fs should be several times hybrid %.1fs",
			first.Ratio, first.SimpleHash.Total(), first.HybridHash.Total())
	}
	// And it converges with hybrid once only one pass-over remains.
	last := pts[len(pts)-1]
	if math.Abs(last.SimpleHash.Total()-last.HybridHash.Total()) > 1 {
		t.Errorf("at full memory simple %.1fs and hybrid %.1fs should coincide",
			last.SimpleHash.Total(), last.HybridHash.Total())
	}
}

func TestFigure1AllHashAlgorithmsCheapAtFullMemory(t *testing.T) {
	pts := table2Points(t)
	last := pts[len(pts)-1]
	if last.Ratio != 1.0 {
		t.Fatalf("grid should end at 1.0, got %.3f", last.Ratio)
	}
	if last.HybridHash.Total() > 30 {
		t.Errorf("hybrid at ratio 1.0 = %.1fs, expected ~17s (pure CPU)", last.HybridHash.Total())
	}
	if last.HybridHash.IO != 0 {
		t.Errorf("hybrid at ratio 1.0 charged %.1fs of IO, expected none", last.HybridHash.IO)
	}
}

func TestFigure1HybridDiscontinuityAtHalf(t *testing.T) {
	p := cost.DefaultParams()
	w := Table2Workload()
	// Just below half memory two output buffers force IOrand; just above,
	// a single buffer writes sequentially (the paper's footnote).
	below := HybridHashCost(p, w, 5900)
	above := HybridHashCost(p, w, 6100)
	if below.Total() <= above.Total() {
		t.Errorf("expected a drop crossing |M| = |R|*F/2: %.1fs -> %.1fs", below.Total(), above.Total())
	}
	if below.Total()-above.Total() < 50 {
		t.Errorf("discontinuity too small: %.1fs vs %.1fs", below.Total(), above.Total())
	}
}

func TestTable3RankingInvariant(t *testing.T) {
	outcomes, err := Table3Sweep(Table3Settings(), DefaultRatios())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.SortMergeBeatenShare != 1 {
			t.Errorf("%s: hybrid beat sort-merge at only %.0f%% of grid points",
				o.Setting.Name, 100*o.SortMergeBeatenShare)
		}
		// Hybrid is first or second (the simple-hash IOseq artifact region)
		// everywhere, per the paper's "same qualitative shape and relative
		// positioning" claim.
		if o.HybridWorstRank > 2 {
			t.Errorf("%s: hybrid fell to rank %d", o.Setting.Name, o.HybridWorstRank)
		}
	}
}

func TestTable1CrossoverMatchesPaperConclusion(t *testing.T) {
	base := AccessParams{R: 1_000_000, K: 8, L: 100, P: 4096}
	ys := []float64{0.5, 0.7, 0.9, 1.0}
	zs := []float64{10, 20, 30}
	random, sequential := Table1(base, ys, zs, 1000)
	for _, rows := range [][]Table1Row{random, sequential} {
		for _, row := range rows {
			for i, h := range row.CrossoverH {
				// Paper: "B+-trees are the preferred storage mechanism
				// unless more than 80-90% of the database fits in main
				// memory."
				if h < 0.80 || h >= 1 {
					t.Errorf("Z=%.0f Y=%.1f: crossover H=%.3f outside [0.80, 1)", row.Z, ys[i], h)
				}
			}
		}
	}
	// Y discounts AVL comparisons, so smaller Y must lower the crossover.
	for _, row := range random {
		for i := 1; i < len(row.CrossoverH); i++ {
			if row.CrossoverH[i-1] >= row.CrossoverH[i] {
				t.Errorf("Z=%.0f: crossover should increase with Y: %v", row.Z, row.CrossoverH)
			}
		}
	}
}

func TestAVLAlwaysWinsFullyResident(t *testing.T) {
	// §2: "if |M|>S, AVL trees are the preferred structure regardless of
	// the values of H, Y, and Z."
	f := func(rSeed uint32, y8, z8 uint8) bool {
		p := AccessParams{
			R: int64(rSeed)%1_000_000 + 1000,
			K: 8, L: 100, P: 4096,
			Y:       float64(y8%10+1) / 10.0,
			Z:       float64(z8%30 + 1),
			MemFrac: 1,
		}
		a, b := p.RandomAccessCosts()
		return a <= b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessParamsGeometry(t *testing.T) {
	p := AccessParams{R: 1_000_000, K: 8, L: 100, P: 4096, Y: 1, Z: 20}
	// S ≈ 0.69 * S' when L >> pointer size (paper's observation).
	ratio := p.AVLPages() / p.BTreePages()
	if ratio < 0.6 || ratio > 0.8 {
		t.Errorf("S/S' = %.3f, expected ≈ 0.69*(L+8)/L ≈ 0.75", ratio)
	}
	if h := p.BTreeHeight(); h < 2 || h > 4 {
		t.Errorf("index height %v for 1M tuples, expected 2-3", h)
	}
	if c := p.AVLComparisons(); math.Abs(c-(math.Log2(1e6)+0.25)) > 1e-9 {
		t.Errorf("C = %.3f", c)
	}
}

// TestCostFormulaConstants pins hand-computed Table 2 values so any
// accidental change to a formula term is caught exactly.
func TestCostFormulaConstants(t *testing.T) {
	p := cost.DefaultParams()
	w := Table2Workload()
	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 0.05 {
			t.Errorf("%s = %.3f s, hand-computed %.3f s", name, got, want)
		}
	}
	// GRACE: 800k hashes twice, 1.2M moves, 480k probes; 20k pages random
	// out + sequential back.
	g := GraceHashCost(p, w, 3000)
	approx("grace CPU", g.CPU, 2*800000*9e-6+800000*20e-6+400000*1.2*3e-6+400000*20e-6)
	approx("grace IO", g.IO, 20000*0.025+20000*0.010)

	// Hybrid with everything resident (q=1): one hash pass, probes, builds.
	h := HybridHashCost(p, w, 12000)
	approx("hybrid@1.0 CPU", h.CPU, 800000*9e-6+400000*1.2*3e-6+400000*20e-6)
	if h.IO != 0 {
		t.Errorf("hybrid@1.0 IO = %.3f", h.IO)
	}

	// Simple hash single pass equals hybrid at full memory.
	s := SimpleHashCost(p, w, 12000)
	approx("simple@1.0", s.Total(), h.Total())

	// In-memory sort-merge: two heap sorts plus the merging join.
	sm := SortMergeCost(p, w, 12000)
	approx("sort-merge@1.0", sm.Total(),
		2*400000*math.Log2(400000)*(3e-6+60e-6)+800000*3e-6)
}

func TestFigure1RejectsInvalidInput(t *testing.T) {
	p := cost.DefaultParams()
	if _, err := Figure1(p, JoinWorkload{RPages: 10, SPages: 5, RTuplesPerPage: 1, STuplesPerPage: 1}, DefaultRatios()); err == nil {
		t.Error("|R| > |S| should be rejected")
	}
	bad := p
	bad.F = 0.5
	if _, err := Figure1(bad, Table2Workload(), DefaultRatios()); err == nil {
		t.Error("F < 1 should be rejected")
	}
	if _, err := Figure1(p, Table2Workload(), []float64{0.0001}); err == nil {
		t.Error("ratios below the two-pass bound should be rejected")
	}
}
