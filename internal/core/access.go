// Package core implements the paper's analytic cost models: the §2
// AVL-versus-B+-tree access method analysis (Table 1) and the §3 join
// algorithm cost formulas (Figure 1, Table 3).
//
// Where the available text of the paper is ambiguous, the formulas are
// reconstructed from the surrounding derivation and cross-checked against
// the paper's own stated consequences (AVL competitive only above 80–90%
// residency; all hash algorithms equal at |M| = |R|*F; sort-merge improving
// to ~900 s above ratio 1.0). The executable implementations in
// internal/join and internal/avl+btree provide an independent check.
package core

import (
	"fmt"
	"math"
)

// AccessParams characterizes the keyed relation of §2.
type AccessParams struct {
	R       int64   // ||R||: number of tuples
	K       int     // key width in bytes
	L       int     // tuple width in bytes
	P       int     // page size in bytes
	Ptr     int     // pointer width in bytes (the paper's B); 0 means 4
	Y       float64 // AVL comparison cost / B+-tree comparison cost (Y <= 1)
	Z       float64 // page-read weight: cost = Z*|page reads| + |comparisons|
	MemFrac float64 // H = |M|/S: fraction of the AVL structure resident
}

func (p AccessParams) withDefaults() AccessParams {
	if p.Ptr == 0 {
		p.Ptr = 4
	}
	return p
}

// Validate checks parameter sanity.
func (p AccessParams) Validate() error {
	p = p.withDefaults()
	switch {
	case p.R < 1:
		return fmt.Errorf("core: need at least one tuple, got %d", p.R)
	case p.K <= 0 || p.L <= 0 || p.P <= 0:
		return fmt.Errorf("core: K, L, P must be positive")
	case p.Y <= 0 || p.Y > 1:
		return fmt.Errorf("core: Y=%g out of (0,1]", p.Y)
	case p.Z <= 0:
		return fmt.Errorf("core: Z=%g must be positive", p.Z)
	case p.MemFrac < 0 || p.MemFrac > 1:
		return fmt.Errorf("core: MemFrac=%g out of [0,1]", p.MemFrac)
	}
	return nil
}

// AVLComparisons returns C = log2(||R||) + 0.25, the expected comparisons
// to find a tuple in an ||R||-tuple AVL tree [KNUT73].
func (p AccessParams) AVLComparisons() float64 {
	return math.Log2(float64(p.R)) + 0.25
}

// AVLPages returns S, the number of pages the AVL structure occupies:
// each node stores a tuple plus two child pointers, and the structure has
// no page locality. Note S ≈ 0.69*S' when L >> 2*Ptr, as the paper
// observes.
func (p AccessParams) AVLPages() float64 {
	p = p.withDefaults()
	nodeBytes := float64(p.L + 2*p.Ptr)
	return math.Ceil(float64(p.R) * nodeBytes / float64(p.P))
}

// BTreeFanout returns the B+-tree interior fanout P/(K+B) at 69% average
// occupancy [YAO78].
func (p AccessParams) BTreeFanout() float64 {
	p = p.withDefaults()
	return 0.69 * float64(p.P) / float64(p.K+p.Ptr)
}

// BTreeLeaves returns D, the number of leaf pages at 69% occupancy.
func (p AccessParams) BTreeLeaves() float64 {
	return math.Ceil(float64(p.R) * float64(p.L) / (0.69 * float64(p.P)))
}

// BTreeHeight returns the index height: ceil(log_fanout(D)).
func (p AccessParams) BTreeHeight() float64 {
	d := p.BTreeLeaves()
	if d <= 1 {
		return 0
	}
	return math.Ceil(math.Log(d) / math.Log(p.BTreeFanout()))
}

// BTreePages returns S', the total pages of the B+-tree:
// D + D/f + D/f^2 + ... ≈ D * f/(f-1).
func (p AccessParams) BTreePages() float64 {
	d := p.BTreeLeaves()
	f := p.BTreeFanout()
	total := 0.0
	for level := d; ; level = math.Ceil(level / f) {
		total += level
		if level <= 1 {
			break
		}
	}
	return total
}

// BTreeComparisons returns C' = ceil(log2(||R||)).
func (p AccessParams) BTreeComparisons() float64 {
	return math.Ceil(math.Log2(float64(p.R)))
}

// RandomAccessCosts returns the §2 case-1 costs (single-tuple retrieval by
// a random key) for both structures, with the same |M| pages of memory.
// MemFrac is H = |M|/S; the B+-tree residency is H' = |M|/S' = H*S/S',
// capped at 1.
func (p AccessParams) RandomAccessCosts() (avl, btree float64) {
	p = p.withDefaults()
	h := p.MemFrac
	s, sp := p.AVLPages(), p.BTreePages()
	hp := h * s / sp
	if hp > 1 {
		hp = 1
	}
	c := p.AVLComparisons()
	avl = p.Z*c*(1-h) + p.Y*c

	height := p.BTreeHeight()
	btree = p.Z*(height+1)*(1-hp) + p.BTreeComparisons()
	return avl, btree
}

// SequentialAccessCosts returns the §2 case-2 costs: after locating a start
// key, read n records in key order. The AVL tree touches one (randomly
// placed) node per record; the B+-tree touches one leaf per
// 0.69*P/L records. CPU is one comparison-equivalent per record for both
// structures, discounted by Y for the AVL tree.
func (p AccessParams) SequentialAccessCosts(n int64) (avl, btree float64) {
	p = p.withDefaults()
	h := p.MemFrac
	s, sp := p.AVLPages(), p.BTreePages()
	hp := h * s / sp
	if hp > 1 {
		hp = 1
	}
	nf := float64(n)
	avl = p.Z*nf*(1-h) + p.Y*nf

	tuplesPerLeaf := 0.69 * float64(p.P) / float64(p.L)
	leaves := math.Ceil(nf / tuplesPerLeaf)
	btree = p.Z*leaves*(1-hp) + nf
	return avl, btree
}

// CrossoverH returns the smallest residency fraction H = |M|/S at which
// the AVL tree beats the B+-tree for random access, found by bisection.
// It returns 1 if the AVL tree never wins below full residency, and the
// paper guarantees it always wins at H = 1 (no disk accesses, cheaper
// comparisons).
func (p AccessParams) CrossoverH() float64 {
	return crossover(func(h float64) bool {
		q := p
		q.MemFrac = h
		a, b := q.RandomAccessCosts()
		return a < b
	})
}

// CrossoverHSequential is CrossoverH for the sequential-access case with n
// records read.
func (p AccessParams) CrossoverHSequential(n int64) float64 {
	return crossover(func(h float64) bool {
		q := p
		q.MemFrac = h
		a, b := q.SequentialAccessCosts(n)
		return a < b
	})
}

// crossover bisects for the smallest h in [0,1] where avlWins(h) holds.
// Both cost functions are linear in h, so the win region is an interval
// ending at 1.
func crossover(avlWins func(float64) bool) float64 {
	if avlWins(0) {
		return 0
	}
	if !avlWins(1) {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if avlWins(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// Table1Row is one cell grid row of the reproduced Table 1: for a given Z,
// the crossover H for each Y.
type Table1Row struct {
	Z          float64
	CrossoverH []float64 // parallel to the Y values passed to Table1
}

// Table1 reproduces the paper's Table 1: the minimum fraction of the AVL
// structure that must be memory resident for the AVL tree to win, over a
// grid of comparison discounts Y and page-read weights Z.
func Table1(base AccessParams, ys, zs []float64, sequentialN int64) (random, sequential []Table1Row) {
	for _, z := range zs {
		r := Table1Row{Z: z}
		s := Table1Row{Z: z}
		for _, y := range ys {
			p := base
			p.Y, p.Z = y, z
			r.CrossoverH = append(r.CrossoverH, p.CrossoverH())
			s.CrossoverH = append(s.CrossoverH, p.CrossoverHSequential(sequentialN))
		}
		random = append(random, r)
		sequential = append(sequential, s)
	}
	return random, sequential
}
