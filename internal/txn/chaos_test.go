package txn

import (
	"fmt"
	"testing"
	"time"

	"mmdb/internal/fault"
	"mmdb/internal/recovery"
	"mmdb/internal/store"
	"mmdb/internal/wal"
)

// chaosDevices builds log devices wired to a fault schedule.
func chaosDevices(n int, inj wal.WriteInjector, exposeTorn bool) []*wal.Device {
	var devs []*wal.Device
	for i := 0; i < n; i++ {
		d := wal.NewDevice(fmt.Sprintf("log%d", i), 10*time.Millisecond)
		d.Injector = inj
		d.ExposeTorn = exposeTorn
		devs = append(devs, d)
	}
	return devs
}

// replayResolved builds the committed-prefix oracle: a fresh store (plus
// the crash's snapshot pages) with every resolved transaction's update
// records applied in LSN order. Losers' updates are skipped entirely —
// by §5.2 pre-commit ordering no durably committed transaction can have
// overwritten a loser's value, so "undo by pre-image" and "never applied"
// must coincide. Recovery's result must equal this state bit for bit.
func replayResolved(t *testing.T, in recovery.Input, info recovery.Info) *store.Store {
	t.Helper()
	st, err := store.New(in.NumRecords, in.RecSize, in.RecordsPerPage)
	if err != nil {
		t.Fatal(err)
	}
	for p, img := range in.SnapshotPages {
		if err := st.InstallPage(p, img); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range in.Log {
		if r.Type != wal.Update {
			continue
		}
		if !info.Committed[r.Txn] && !info.Ended[r.Txn] {
			continue
		}
		if err := st.Apply(r.Rec, r.New); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// checkCrashInvariants recovers from in and asserts the two §5 safety
// invariants: every transaction acknowledged by crash time is found
// committed, and the recovered state equals the committed-prefix oracle.
func checkCrashInvariants(t *testing.T, e *Engine, in recovery.Input, crashAt time.Duration) recovery.Info {
	t.Helper()
	st, info, err := recovery.Recover(in)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	for _, id := range e.AckedBy(crashAt) {
		if !info.Committed[id] {
			t.Fatalf("acked txn %d lost: not found committed after crash", id)
		}
	}
	if !st.Equal(replayResolved(t, in, info)) {
		t.Fatal("recovered state diverges from the committed-prefix replay")
	}
	return info
}

// TestRecoveryWithTornLogTail tears a log page mid-run: the device keeps
// only a byte prefix of that page (exposed to recovery) and fails from
// then on. Recovery must cut the log at the last intact record and land
// exactly on the committed prefix, never acknowledging a torn-away commit.
func TestRecoveryWithTornLogTail(t *testing.T) {
	for _, expose := range []bool{true, false} {
		cfg := baseConfig(wal.GroupCommit, 1)
		cfg.Accounts = 512
		cfg.RecordsPerPage = 16
		inj := fault.NewInjector(11).TornEvery("log0", 12)
		cfg.Log.Devices = chaosDevices(1, inj, expose)

		const crashAt = 1 * time.Second
		in, e := runAndCrash(t, cfg, 1200*time.Millisecond, crashAt)
		if e.Log().Stats().LostPages == 0 {
			t.Fatal("the tear never happened")
		}
		if inj.Stats().Torn != 1 {
			t.Fatalf("torn writes: %d, want 1", inj.Stats().Torn)
		}
		info := checkCrashInvariants(t, e, in, crashAt)
		if len(info.Committed) == 0 {
			t.Fatal("no commits survived: the schedule killed the whole run")
		}
	}
}

// TestRecoveryTruncatedTailStopsCleanly cuts the torn page mid-record
// (a 40-byte surviving prefix always splits a 33-byte-plus record
// boundary somewhere early) and compares against a fault-free twin: the
// damaged run must recover a (possibly equal) subset of the twin's
// commits, never a superset, and still satisfy both crash invariants.
func TestRecoveryTruncatedTailStopsCleanly(t *testing.T) {
	run := func(inj wal.WriteInjector) (recovery.Input, *Engine) {
		cfg := baseConfig(wal.GroupCommit, 1)
		cfg.Accounts = 512
		cfg.RecordsPerPage = 16
		cfg.Log.Devices = chaosDevices(1, inj, true)
		return runAndCrash(t, cfg, 1200*time.Millisecond, 1*time.Second)
	}
	clean, _ := run(nil)
	torn, e := run(fault.NewInjector(7).TornEvery("log0", 9, 40))

	_, cleanInfo, err := recovery.Recover(clean)
	if err != nil {
		t.Fatal(err)
	}
	tornInfo := checkCrashInvariants(t, e, torn, 1*time.Second)
	if len(tornInfo.Committed) >= len(cleanInfo.Committed) {
		t.Fatalf("torn run recovered %d commits, fault-free twin %d: the tear cost nothing",
			len(tornInfo.Committed), len(cleanInfo.Committed))
	}
}

// TestLoserUndoUnderAbortsAndHotChains crashes a contended workload —
// hot accounts force pre-commit dependency chains, AbortEvery seeds
// rollbacks — at several instants and checks both crash invariants at
// each, requiring that undo actually ran at least once across the grid.
func TestLoserUndoUnderAbortsAndHotChains(t *testing.T) {
	undone := 0
	for _, crashAt := range []time.Duration{
		130 * time.Millisecond,
		517 * time.Millisecond,
		901 * time.Millisecond,
	} {
		cfg := baseConfig(wal.GroupCommit, 2)
		cfg.Accounts = 512
		cfg.RecordsPerPage = 16
		cfg.HotAccounts = 12
		cfg.AbortEvery = 5
		// Tiny log pages force every transaction's records across page
		// boundaries, so crashes catch update pages durable with the commit
		// group still in flight — the undo path's worst case.
		cfg.Log.PageSize = 256
		in, e := runAndCrash(t, cfg, 1200*time.Millisecond, crashAt)
		info := checkCrashInvariants(t, e, in, crashAt)
		undone += info.Undone
		if len(info.Committed) == 0 {
			t.Fatalf("crash at %v: nothing committed", crashAt)
		}
	}
	if undone == 0 {
		t.Fatal("no loser update was ever undone across the crash grid")
	}
}
