// Package txn implements the §5 transaction engine for a memory-resident
// database: strict two-phase locking with pre-committed transactions,
// write-ahead logging under the paper's three commit disciplines, a
// closed-loop terminal workload (Gray's debit/credit banking mix, the
// paper's "typical transaction" with 400 bytes of log), background fuzzy
// checkpointing, and a crash hook that exposes exactly the durable state
// to the recovery package.
//
// Everything runs on a discrete-event simulator in virtual time, so the
// paper's throughput arithmetic (one 10 ms log write per page) is
// reproduced deterministically.
package txn

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"mmdb/internal/checkpoint"
	"mmdb/internal/event"
	"mmdb/internal/lock"
	"mmdb/internal/recovery"
	"mmdb/internal/store"
	"mmdb/internal/wal"
)

// Config parameterizes an engine run.
type Config struct {
	Accounts       int // number of bank account records
	RecSize        int // bytes per record; 0 means 46 (≈400 log bytes/txn, §5.1)
	RecordsPerPage int // records per data page; 0 means 64
	UpdatesPerTxn  int // accounts touched per transaction; 0 means 3 (§5.2: "three to four page reads and writes")
	Terminals      int // closed-loop multiprogramming level
	HotAccounts    int // restrict account choice to the first N accounts (0 = all); small values force pre-commit dependencies
	AbortEvery     int // abort every n-th transaction before commit (0 = never)
	Seed           int64

	// TruncateLog reclaims the log prefix no recovery could need (below
	// both the stable first-update table's oldest entry and the first
	// record of any unresolved transaction). Effective only with
	// checkpointing, which is what advances the redo bound (§5.5).
	TruncateLog bool
	// TruncateEvery is the commit cadence of truncation attempts.
	// 0 means 64; small values tighten how much reclaimable log can pile
	// up between attempts (the recovery-scale ladder uses this to keep
	// the scanned window near-constant).
	TruncateEvery int

	// Read-only terminals exercise the paper's §6 conjecture that "a
	// versioning mechanism [REED83] may provide superior performance for
	// memory resident systems": each runs a closed loop of transactions
	// reading ReadAccounts accounts with ReadCPU of think time per read.
	// With Versioning they read a consistent snapshot from version chains
	// without locks; without it they take shared locks like any 2PL
	// transaction and block the updaters.
	ReadOnlyTerminals int
	ReadAccounts      int           // accounts read per read-only transaction; 0 means 20
	ReadCPU           time.Duration // virtual CPU per read; 0 means 200µs
	Versioning        bool          // lock-free snapshot reads via version chains

	Log        wal.Config
	Checkpoint bool        // run the background checkpointer
	DataDevice *wal.Device // disk for checkpoint page writes; nil disables Checkpoint
}

func (c Config) withDefaults() Config {
	if c.RecSize == 0 {
		c.RecSize = 46
	}
	if c.RecordsPerPage == 0 {
		c.RecordsPerPage = 64
	}
	if c.UpdatesPerTxn == 0 {
		c.UpdatesPerTxn = 3
	}
	if c.Terminals == 0 {
		c.Terminals = 1
	}
	if c.ReadAccounts == 0 {
		c.ReadAccounts = 20
	}
	if c.ReadCPU == 0 {
		c.ReadCPU = 200 * time.Microsecond
	}
	if c.TruncateEvery == 0 {
		c.TruncateEvery = 64
	}
	return c
}

// Stats summarizes a run.
type Stats struct {
	Started     int64
	Committed   int64 // commits acknowledged by the measurement deadline
	Aborted     int64
	ReadTxns    int64         // read-only transactions acknowledged by the deadline
	Duration    time.Duration // measurement window (virtual)
	Log         wal.Stats
	CkptPages   int64
	MaxDepLists int // largest dependency list observed (pre-commit coupling)
}

// ReadTPS returns acknowledged read-only transactions per virtual second.
func (s Stats) ReadTPS() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.ReadTxns) / s.Duration.Seconds()
}

// TPS returns committed transactions per virtual second.
func (s Stats) TPS() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Committed) / s.Duration.Seconds()
}

type txnState struct {
	id       wal.TxnID
	terminal int
	accounts []uint64
	deltas   []int64
	step     int
	deps     map[wal.TxnID]struct{}
	undo     []undoEntry
	abort    bool
	firstLSN wal.LSN // the Begin record's LSN (log truncation's undo bound)
}

type undoEntry struct {
	rec uint64
	old []byte
}

// Engine drives the workload.
type Engine struct {
	sim   *event.Sim
	cfg   Config
	st    *store.Store
	log   *wal.Log
	locks *lock.Manager
	snap  *checkpoint.Snapshot
	ckpt  *checkpoint.Checkpointer
	rng   *rand.Rand

	nextTxn  wal.TxnID
	states   map[wal.TxnID]*txnState
	acked    map[wal.TxnID]time.Duration
	stalled  []func()
	stopped  bool
	deadline time.Duration

	// Versioning support (§6 / [REED83]): per-record pre-image chains,
	// commit LSNs for visibility, and readers waiting for the durable
	// commit of transactions whose pre-committed data they observed.
	versions   map[uint64][]version
	commitLSN  map[wal.TxnID]wal.LSN
	depWaiters map[wal.TxnID][]func()
	readers    map[wal.TxnID]*readerState

	stats Stats
}

// version records that the update at LSN lsn by txn overwrote old.
type version struct {
	lsn wal.LSN
	txn wal.TxnID
	old []byte
}

// New builds an engine. The caller supplies the simulator so tests can
// interleave other processes.
func New(sim *event.Sim, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Accounts < cfg.UpdatesPerTxn {
		return nil, fmt.Errorf("txn: need at least %d accounts, got %d", cfg.UpdatesPerTxn, cfg.Accounts)
	}
	if cfg.RecSize < 8 {
		return nil, fmt.Errorf("txn: record size %d too small for a balance", cfg.RecSize)
	}
	st, err := store.New(cfg.Accounts, cfg.RecSize, cfg.RecordsPerPage)
	if err != nil {
		return nil, err
	}
	l, err := wal.NewLog(sim, cfg.Log)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		sim:        sim,
		cfg:        cfg,
		st:         st,
		log:        l,
		locks:      lock.NewManager(),
		snap:       checkpoint.NewSnapshot(),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		states:     make(map[wal.TxnID]*txnState),
		acked:      make(map[wal.TxnID]time.Duration),
		versions:   make(map[uint64][]version),
		commitLSN:  make(map[wal.TxnID]wal.LSN),
		depWaiters: make(map[wal.TxnID][]func()),
	}
	e.ckpt = checkpoint.New(sim, st, l, cfg.DataDevice, e.snap)
	e.ckpt.InitialSnapshot()
	l.SetOnCommit(e.onDurableCommit)
	l.SetOnDrain(e.wakeStalled)
	l.SetBoundsFunc(e.logBounds)
	// A completed checkpoint page write can advance the replay horizon;
	// push the new bound into every segmented device's commit.meta.
	e.ckpt.OnAdvance = l.PublishMeta
	return e, nil
}

// logBounds supplies the log's two safety bounds (§5.5). compactable is
// the durably-resolved floor: min over the durable LSN+1 and the first
// record of every transaction whose outcome is not yet durable — below
// it the §5.6 compactor may strip pre-images. horizon additionally stays
// below the stable first-update table's oldest entry, so everything
// beneath it is reflected in the checkpoint snapshot: the truncation
// point, and what commit.meta publishes for recovery to skip segments by.
func (e *Engine) logBounds() (horizon, compactable wal.LSN) {
	compactable = e.log.DurableLSN() + 1
	if first, ok := e.log.UnresolvedFloor(); ok && first < compactable {
		compactable = first
	}
	horizon = compactable
	if start, ok := e.ckpt.RecoveryStartLSN(); ok && start < horizon {
		horizon = start
	}
	return horizon, compactable
}

// Store exposes the live database (for verification in tests).
func (e *Engine) Store() *store.Store { return e.st }

// Log exposes the log manager.
func (e *Engine) Log() *wal.Log { return e.log }

// Snapshot exposes the checkpoint image.
func (e *Engine) Snapshot() *checkpoint.Snapshot { return e.snap }

// Stats returns run statistics (Log stats are refreshed on read).
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Log = e.log.Stats()
	s.CkptPages = e.ckpt.PagesWritten
	return s
}

// Run executes the closed-loop workload for the given virtual duration,
// then lets in-flight transactions drain. It returns the run statistics
// with Committed counted at the deadline.
func (e *Engine) Run(d time.Duration) Stats {
	e.deadline = e.sim.Now() + d
	e.stopped = false
	if e.cfg.Checkpoint && e.cfg.DataDevice != nil {
		e.ckpt.Start()
	}
	commitsAtDeadline := int64(-1)
	readsAtDeadline := int64(-1)
	e.sim.At(e.deadline, func() {
		e.stopped = true
		e.ckpt.Stop()
		commitsAtDeadline = e.stats.Committed
		readsAtDeadline = e.stats.ReadTxns
		e.log.Flush() // release a straggling partial commit group
	})
	for t := 0; t < e.cfg.Terminals; t++ {
		term := t
		e.sim.After(0, func() { e.startTxn(term) })
	}
	for t := 0; t < e.cfg.ReadOnlyTerminals; t++ {
		term := t
		e.sim.After(0, func() { e.startReader(term) })
	}
	e.sim.Run()
	s := e.Stats()
	if commitsAtDeadline >= 0 {
		s.Committed = commitsAtDeadline
		s.ReadTxns = readsAtDeadline
	}
	s.Duration = d
	return s
}

// RunUntilIdle drains all pending events without a deadline (used by crash
// tests that stop the clock mid-flight instead).
func (e *Engine) RunUntilIdle() {
	e.sim.Run()
}

// StopNow prevents terminals from starting further transactions.
func (e *Engine) StopNow() {
	e.stopped = true
	e.ckpt.Stop()
}

func (e *Engine) startTxn(terminal int) {
	if e.stopped {
		return
	}
	e.nextTxn++
	id := e.nextTxn
	s := &txnState{
		id:       id,
		terminal: terminal,
		deps:     make(map[wal.TxnID]struct{}),
	}
	s.abort = e.cfg.AbortEvery > 0 && int(id)%e.cfg.AbortEvery == 0
	// Pick distinct accounts, sorted to make lock acquisition deadlock
	// free; the deltas are zero-sum (a transfer), so the total balance of
	// committed state is invariantly zero — the recovery oracle.
	domain := e.cfg.Accounts
	if e.cfg.HotAccounts > 0 && e.cfg.HotAccounts < domain {
		domain = e.cfg.HotAccounts
	}
	seen := make(map[uint64]bool, e.cfg.UpdatesPerTxn)
	for len(s.accounts) < e.cfg.UpdatesPerTxn {
		a := uint64(e.rng.Intn(domain))
		if !seen[a] {
			seen[a] = true
			s.accounts = append(s.accounts, a)
		}
	}
	sortAccounts(s.accounts)
	amount := int64(e.rng.Intn(1000) + 1)
	s.deltas = make([]int64, len(s.accounts))
	for i := 1; i < len(s.deltas); i++ {
		s.deltas[i] = amount
	}
	s.deltas[0] = -amount * int64(len(s.deltas)-1)

	e.states[id] = s
	e.stats.Started++
	e.appendOrStall(func() bool {
		lsn, ok := e.log.Append(wal.Record{Txn: id, Type: wal.Begin})
		if ok {
			s.firstLSN = lsn
		}
		return ok
	}, func() { e.acquireNext(s) })
}

// appendOrStall runs try; on stable-memory backpressure it parks the
// continuation until the log drains.
func (e *Engine) appendOrStall(try func() bool, then func()) {
	if try() {
		then()
		return
	}
	e.stalled = append(e.stalled, func() { e.appendOrStall(try, then) })
}

func (e *Engine) wakeStalled() {
	waiting := e.stalled
	e.stalled = nil
	for _, fn := range waiting {
		fn()
	}
}

func (e *Engine) acquireNext(s *txnState) {
	if s.step >= len(s.accounts) {
		e.finish(s)
		return
	}
	i := s.step
	acct := s.accounts[i]
	e.locks.Acquire(s.id, acct, lock.Exclusive, func(deps []wal.TxnID) {
		for _, d := range deps {
			s.deps[d] = struct{}{}
		}
		if len(s.deps) > e.stats.MaxDepLists {
			e.stats.MaxDepLists = len(s.deps)
		}
		e.applyUpdate(s, i)
	})
}

func (e *Engine) applyUpdate(s *txnState, i int) {
	acct := s.accounts[i]
	old := e.st.Read(acct)
	newVal := append([]byte(nil), old...)
	bal := int64(binary.BigEndian.Uint64(newVal[:8]))
	binary.BigEndian.PutUint64(newVal[:8], uint64(bal+s.deltas[i]))
	e.appendOrStall(func() bool {
		lsn, ok := e.log.Append(wal.Record{
			Txn:  s.id,
			Type: wal.Update,
			Rec:  acct,
			Old:  old,
			New:  newVal,
		})
		if !ok {
			return false
		}
		if err := e.st.Write(acct, newVal, lsn); err != nil {
			panic(err)
		}
		e.pushVersion(acct, lsn, s.id, old)
		return true
	}, func() {
		s.undo = append(s.undo, undoEntry{rec: acct, old: old})
		e.ckpt.Kick()
		s.step++
		e.acquireNext(s)
	})
}

// finish pre-commits (or aborts) after the last update.
func (e *Engine) finish(s *txnState) {
	if s.abort {
		e.rollback(s, len(s.undo)-1)
		return
	}
	// Pre-commit: release locks before the commit record is durable
	// (§5.2); dependents pick us up from the lock table's pre-committed
	// lists.
	e.locks.PreCommit(s.id)
	deps := make([]wal.TxnID, 0, len(s.deps))
	for d := range s.deps {
		deps = append(deps, d)
	}
	e.appendOrStall(func() bool {
		if !e.log.AppendCommit(s.id, deps) {
			return false
		}
		// The commit record's LSN is the visibility timestamp for
		// versioned snapshot reads.
		e.commitLSN[s.id] = e.log.CurrentLSN()
		return true
	}, func() {})
}

// rollback undoes s's updates in reverse order, logging a compensating
// update for each (so redo remains a pure forward replay) and finally an
// End record marking the rollback complete. A crash mid-rollback leaves the
// transaction a loser, and undoing its updates — compensations included —
// in reverse order restores the pre-transaction state.
func (e *Engine) rollback(s *txnState, i int) {
	if i < 0 {
		e.appendOrStall(func() bool {
			_, ok := e.log.Append(wal.Record{Txn: s.id, Type: wal.End})
			return ok
		}, func() {
			e.locks.ReleaseAll(s.id)
			delete(e.states, s.id)
			e.stats.Aborted++
			term := s.terminal
			e.sim.After(0, func() { e.startTxn(term) })
		})
		return
	}
	u := s.undo[i]
	cur := e.st.Read(u.rec)
	e.appendOrStall(func() bool {
		lsn, ok := e.log.Append(wal.Record{
			Txn:  s.id,
			Type: wal.Update,
			Rec:  u.rec,
			Old:  cur,
			New:  u.old,
		})
		if !ok {
			return false
		}
		if err := e.st.Write(u.rec, u.old, lsn); err != nil {
			panic(err)
		}
		e.pushVersion(u.rec, lsn, s.id, cur)
		return true
	}, func() {
		e.ckpt.Kick()
		e.rollback(s, i-1)
	})
}

func (e *Engine) onDurableCommit(id wal.TxnID) {
	if waiters := e.depWaiters[id]; len(waiters) > 0 {
		delete(e.depWaiters, id)
		for _, fn := range waiters {
			fn()
		}
	}
	s, ok := e.states[id]
	if !ok {
		return
	}
	delete(e.states, id)
	e.locks.Finish(id)
	e.acked[id] = e.sim.Now()
	e.stats.Committed++
	if e.cfg.TruncateLog && e.stats.Committed%int64(e.cfg.TruncateEvery) == 0 {
		e.maybeTruncateLog()
	}
	term := s.terminal
	e.sim.After(0, func() { e.startTxn(term) })
}

// maybeTruncateLog advances the log truncation horizon to the highest LSN
// below which no recovery could need a record. The undo bound comes from
// the log's own unresolved floor rather than the engine's in-flight set:
// an aborting transaction leaves that set when its End record is appended,
// before the End is durable, and truncating its updates in that window
// would leave recovery a loser it cannot undo.
func (e *Engine) maybeTruncateLog() {
	horizon, _ := e.logBounds()
	e.log.TruncateBefore(horizon)
}

// AckedBy returns the transactions whose commit was acknowledged to their
// terminal at or before virtual time t. Recovery must preserve all of
// their effects.
func (e *Engine) AckedBy(t time.Duration) []wal.TxnID {
	var out []wal.TxnID
	for id, at := range e.acked {
		if at <= t {
			out = append(out, id)
		}
	}
	return out
}

// CrashInput captures exactly the crash-durable state at the current
// virtual instant: the checkpoint snapshot on disk, the merged durable log
// (disk fragments plus surviving stable memory), and the stable
// first-update table's redo bound.
func (e *Engine) CrashInput() (recovery.Input, error) {
	records, err := e.log.DurableRecords(e.sim.Now())
	if err != nil {
		return recovery.Input{}, err
	}
	start, have := e.ckpt.RecoveryStartLSN()
	// Deep-copy the snapshot: the live checkpointer keeps installing pages
	// after this instant, but the crash sees the images as they are now.
	pages := make(map[int][]byte, e.snap.Len())
	for p, img := range e.snap.Pages() {
		pages[p] = append([]byte(nil), img...)
	}
	return recovery.Input{
		NumRecords:     e.cfg.Accounts,
		RecSize:        e.cfg.RecSize,
		RecordsPerPage: e.cfg.RecordsPerPage,
		SnapshotPages:  pages,
		Log:            records,
		StartLSN:       start,
		HaveStart:      have,
	}, nil
}

// CrashInputSegmented captures the crash-durable state of a segmented-log
// engine: each device's surviving segment files and commit.meta position,
// the checkpoint snapshot, and the redo bound — the input to
// recovery.RecoverSegmented. It fails when the log is not segmented
// (Config.Log.SegmentPages == 0).
func (e *Engine) CrashInputSegmented() (recovery.SegInput, error) {
	now := e.sim.Now()
	in := recovery.SegInput{
		NumRecords:     e.cfg.Accounts,
		RecSize:        e.cfg.RecSize,
		RecordsPerPage: e.cfg.RecordsPerPage,
		PageSize:       e.log.Config().PageSize,
	}
	for _, d := range e.log.Config().Devices {
		v, ok := d.DurableSegments(now)
		if !ok {
			return recovery.SegInput{}, fmt.Errorf("txn: device %s is not segmented (set Log.SegmentPages)", d.Name)
		}
		in.Devices = append(in.Devices, recovery.DeviceLogFromView(v))
	}
	if e.log.Config().Policy == wal.StableMemory {
		in.StableTail = e.log.StableRecords()
	}
	in.StartLSN, in.HaveStart = e.ckpt.RecoveryStartLSN()
	pages := make(map[int][]byte, e.snap.Len())
	for p, img := range e.snap.Pages() {
		pages[p] = append([]byte(nil), img...)
	}
	in.SnapshotPages = pages
	return in, nil
}

func sortAccounts(a []uint64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
