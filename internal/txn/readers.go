package txn

import (
	"encoding/binary"

	"mmdb/internal/lock"
	"mmdb/internal/wal"
)

// This file implements the read-only transaction path used to test the
// paper's §6 conjecture: "While locking is generally accepted to [be] the
// algorithm of choice for disk resident databases, a versioning mechanism
// [REED83] may provide superior performance for memory resident systems."
//
// Two regimes, selected by Config.Versioning:
//
//   - Locking: the reader takes shared locks as it scans, holding them to
//     the end (strict 2PL). Long scans over hot records stall the
//     updaters' exclusive locks.
//   - Versioning: the reader fixes a snapshot LSN at start and
//     reconstructs each record's committed value at that snapshot from the
//     per-record version chain — no locks, no interference with writers.
//
// Either way the reader is only acknowledged once every transaction whose
// (pre-committed) data it observed is durably committed, the same user-
// visible rule the paper applies to dependent update transactions.

// readerState tracks one in-flight read-only transaction.
type readerState struct {
	id       wal.TxnID
	terminal int
	accounts []uint64
	step     int
	sum      int64
	deps     map[wal.TxnID]struct{}
	snapshot wal.LSN // versioning only
}

// pushVersion records a pre-image on the record's version chain and prunes
// entries no reader can need (older than the oldest active snapshot).
func (e *Engine) pushVersion(rec uint64, lsn wal.LSN, txn wal.TxnID, old []byte) {
	if !e.cfg.Versioning {
		return
	}
	chain := append(e.versions[rec], version{lsn: lsn, txn: txn, old: append([]byte(nil), old...)})
	if min, ok := e.oldestSnapshot(); ok {
		// Keep the newest entry at or below the horizon so min-snapshot
		// readers can still reconstruct; drop everything older.
		cut := 0
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].lsn <= min {
				cut = i
				break
			}
		}
		chain = append([]version(nil), chain[cut:]...)
	} else if len(chain) > 64 {
		chain = append([]version(nil), chain[len(chain)-64:]...)
	}
	e.versions[rec] = chain
}

// oldestSnapshot returns the smallest snapshot LSN among active readers.
func (e *Engine) oldestSnapshot() (wal.LSN, bool) {
	var min wal.LSN
	found := false
	for _, s := range e.readers {
		if !found || s.snapshot < min {
			min, found = s.snapshot, true
		}
	}
	return min, found
}

// snapshotRead reconstructs rec's committed value as of snapshot s by
// undoing, newest first, every version whose writer had not committed by
// s (including writers that never committed: their compensations undo in
// pairs). It reports the newest visible version's writer so the caller
// can register a durable-commit dependency.
func (e *Engine) snapshotRead(rec uint64, s wal.LSN) (val []byte, visibleWriter wal.TxnID) {
	cur := e.st.Read(rec)
	chain := e.versions[rec]
	for i := len(chain) - 1; i >= 0; i-- {
		v := chain[i]
		if cl, ok := e.commitLSN[v.txn]; ok && cl <= s {
			return cur, v.txn
		}
		cur = append(cur[:0], v.old...)
	}
	return cur, 0
}

// startReader launches one read-only transaction on a reader terminal.
func (e *Engine) startReader(terminal int) {
	if e.stopped {
		return
	}
	e.nextTxn++
	r := &readerState{
		id:       e.nextTxn,
		terminal: terminal,
		deps:     make(map[wal.TxnID]struct{}),
	}
	domain := e.cfg.Accounts
	if e.cfg.HotAccounts > 0 && e.cfg.HotAccounts < domain {
		domain = e.cfg.HotAccounts
	}
	n := e.cfg.ReadAccounts
	if n > domain {
		n = domain
	}
	seen := make(map[uint64]bool, n)
	for len(r.accounts) < n {
		a := uint64(e.rng.Intn(domain))
		if !seen[a] {
			seen[a] = true
			r.accounts = append(r.accounts, a)
		}
	}
	sortAccounts(r.accounts)
	if e.cfg.Versioning {
		r.snapshot = e.log.CurrentLSN()
	}
	if e.readers == nil {
		e.readers = make(map[wal.TxnID]*readerState)
	}
	e.readers[r.id] = r
	e.readStep(r)
}

// readStep performs one record read, then schedules the next after the
// configured per-read CPU time.
func (e *Engine) readStep(r *readerState) {
	if r.step >= len(r.accounts) {
		e.finishReader(r)
		return
	}
	acct := r.accounts[r.step]
	consume := func(val []byte, visibleWriter wal.TxnID) {
		r.sum += int64(binary.BigEndian.Uint64(val[:8]))
		if visibleWriter != 0 {
			if _, durable := e.acked[visibleWriter]; !durable {
				if _, active := e.states[visibleWriter]; active {
					r.deps[visibleWriter] = struct{}{}
				}
			}
		}
		r.step++
		e.sim.After(e.cfg.ReadCPU, func() { e.readStep(r) })
	}
	if e.cfg.Versioning {
		consume(e.snapshotRead(acct, r.snapshot))
		return
	}
	e.locks.Acquire(r.id, acct, lock.Shared, func(deps []wal.TxnID) {
		for _, d := range deps {
			if _, durable := e.acked[d]; !durable {
				r.deps[d] = struct{}{}
			}
		}
		consume(e.st.Read(acct), 0)
	})
}

// finishReader releases locks (locking mode) and acknowledges the reader
// once every pre-committed transaction it observed is durable.
func (e *Engine) finishReader(r *readerState) {
	if !e.cfg.Versioning {
		e.locks.ReleaseAll(r.id)
	}
	delete(e.readers, r.id)
	e.verifyReaderSum(r)

	outstanding := 0
	done := func() {
		outstanding--
		if outstanding == 0 {
			e.ackReader(r)
		}
	}
	for d := range r.deps {
		if _, durable := e.acked[d]; durable {
			continue
		}
		if _, active := e.states[d]; !active {
			continue // aborted or already gone
		}
		outstanding++
		e.depWaiters[d] = append(e.depWaiters[d], done)
	}
	if outstanding == 0 {
		e.ackReader(r)
	}
}

func (e *Engine) ackReader(r *readerState) {
	e.stats.ReadTxns++
	term := r.terminal
	e.sim.After(0, func() { e.startReader(term) })
}

// verifyReaderSum checks snapshot consistency for full-domain scans: the
// workload's transfers are zero-sum, so any transaction-consistent view of
// ALL accounts sums to zero. Partial scans can't be checked this way.
func (e *Engine) verifyReaderSum(r *readerState) {
	if !e.cfg.Versioning || len(r.accounts) != e.cfg.Accounts {
		return
	}
	if r.sum != 0 {
		panic("txn: versioned snapshot read saw a non-transaction-consistent state")
	}
}
