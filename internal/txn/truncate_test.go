package txn

import (
	"testing"
	"time"

	"mmdb/internal/event"
	"mmdb/internal/recovery"
	"mmdb/internal/wal"
)

func truncateConfig(truncate bool) Config {
	cfg := baseConfig(wal.GroupCommit, 1)
	cfg.Accounts = 512
	cfg.RecordsPerPage = 16
	cfg.Terminals = 20
	cfg.Checkpoint = true
	cfg.DataDevice = wal.NewDevice("data", 2*time.Millisecond)
	cfg.TruncateLog = truncate
	return cfg
}

// runAndCrash drives the workload and captures the durable state at
// crashAt.
func runAndCrash(t *testing.T, cfg Config, runFor, crashAt time.Duration) (recovery.Input, *Engine) {
	t.Helper()
	sim := &event.Sim{}
	e, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var in recovery.Input
	var crashErr error
	sim.At(crashAt, func() { in, crashErr = e.CrashInput() })
	e.Run(runFor)
	if crashErr != nil {
		t.Fatal(crashErr)
	}
	return in, e
}

func TestLogTruncationPreservesRecovery(t *testing.T) {
	// Same seed, same crash instant: recovery over the truncated log must
	// produce exactly the state recovery over the full log produces.
	const runFor = 2 * time.Second
	const crashAt = 1900 * time.Millisecond

	full, _ := runAndCrash(t, truncateConfig(false), runFor, crashAt)
	truncated, e := runAndCrash(t, truncateConfig(true), runFor, crashAt)

	if e.Log().Stats().Truncated == 0 {
		t.Fatal("no log records were reclaimed")
	}
	if len(truncated.Log) >= len(full.Log) {
		t.Fatalf("truncated crash log has %d records, full %d", len(truncated.Log), len(full.Log))
	}

	stFull, _, err := recovery.Recover(full)
	if err != nil {
		t.Fatal(err)
	}
	stTrunc, _, err := recovery.Recover(truncated)
	if err != nil {
		t.Fatal(err)
	}
	if !stFull.Equal(stTrunc) {
		t.Fatal("truncation changed the recovered state")
	}
}

func TestTruncationNeverPassesUnresolvedTransactions(t *testing.T) {
	// Crash at many instants; at each, every unresolved (loser)
	// transaction's records must still be fully present in the truncated
	// log — otherwise undo would fail, which recovery.Recover reports.
	cfg := truncateConfig(true)
	cfg.HotAccounts = 6 // dependencies keep some txns unresolved longer
	for _, at := range []time.Duration{
		101 * time.Millisecond,
		503 * time.Millisecond,
		997 * time.Millisecond,
	} {
		in, _ := runAndCrash(t, cfg, 1200*time.Millisecond, at)
		if _, _, err := recovery.Recover(in); err != nil {
			t.Fatalf("crash at %v: %v", at, err)
		}
	}
}

func TestTruncationMonotoneAndBounded(t *testing.T) {
	sim := &event.Sim{}
	e, err := New(sim, truncateConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(1 * time.Second)
	l := e.Log()
	horizon := l.TruncatedLSN()
	if horizon == 0 {
		t.Fatal("truncation never advanced")
	}
	// Moving backwards is a no-op.
	l.TruncateBefore(horizon - 10)
	if l.TruncatedLSN() != horizon {
		t.Fatal("truncation moved backwards")
	}
}
