package txn

import (
	"encoding/binary"
	"testing"
	"testing/quick"
	"time"

	"mmdb/internal/event"
	"mmdb/internal/recovery"
	"mmdb/internal/store"
	"mmdb/internal/wal"
)

func logDevices(n int) []*wal.Device {
	var out []*wal.Device
	for i := 0; i < n; i++ {
		out = append(out, wal.NewDevice("log", 10*time.Millisecond))
	}
	return out
}

func baseConfig(policy wal.CommitPolicy, devices int) Config {
	return Config{
		Accounts:  5000,
		Terminals: 50,
		Seed:      42,
		Log: wal.Config{
			Policy:  policy,
			Devices: logDevices(devices),
		},
	}
}

func runFor(t *testing.T, cfg Config, d time.Duration) Stats {
	t.Helper()
	sim := &event.Sim{}
	e, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e.Run(d)
}

func TestFlushPerCommitIsBoundedAt100TPS(t *testing.T) {
	// §5.2: one log IO per commit on a 10 ms device caps the system at
	// ~100 committed transactions per second.
	s := runFor(t, baseConfig(wal.FlushPerCommit, 1), 10*time.Second)
	if tps := s.TPS(); tps < 90 || tps > 105 {
		t.Fatalf("flush-per-commit TPS = %.1f, expected ~100", tps)
	}
}

func TestGroupCommitReachesRoughly1000TPS(t *testing.T) {
	// §5.2: ~10 transactions of ~400 log bytes share one 4 KB page, so
	// group commit lifts throughput by an order of magnitude.
	s := runFor(t, baseConfig(wal.GroupCommit, 1), 10*time.Second)
	if tps := s.TPS(); tps < 700 || tps > 1100 {
		t.Fatalf("group-commit TPS = %.1f, expected ~1000", tps)
	}
	if m := s.Log.MeanGroupSize(); m < 5 {
		t.Fatalf("mean commit group size = %.1f, expected several transactions per page", m)
	}
}

func TestGroupCommitImprovesOnFlushPerCommitByAnOrderOfMagnitude(t *testing.T) {
	flush := runFor(t, baseConfig(wal.FlushPerCommit, 1), 5*time.Second)
	group := runFor(t, baseConfig(wal.GroupCommit, 1), 5*time.Second)
	if ratio := group.TPS() / flush.TPS(); ratio < 7 {
		t.Fatalf("group commit only %.1fx flush-per-commit (want ~10x)", ratio)
	}
}

func TestPartitionedLogScalesThroughput(t *testing.T) {
	// §5.2: "throughput can be further increased ... by partitioning the
	// log across several devices." Scaling presumes mostly independent
	// transactions: pre-commit dependencies serialize commit groups across
	// fragments, so the account pool is kept large here (see
	// TestHotAccountsProduceDependencies for the contended case).
	mkCfg := func(devices, terminals int) Config {
		cfg := baseConfig(wal.GroupCommit, devices)
		cfg.Accounts = 100000
		cfg.Terminals = terminals
		return cfg
	}
	one := runFor(t, mkCfg(1, 50), 5*time.Second)
	two := runFor(t, mkCfg(2, 100), 5*time.Second)
	four := runFor(t, mkCfg(4, 200), 5*time.Second)
	if r := two.TPS() / one.TPS(); r < 1.6 {
		t.Errorf("2 log devices: %.2fx of 1 device (want ~2x)", r)
	}
	if r := four.TPS() / one.TPS(); r < 3.0 {
		t.Errorf("4 log devices: %.2fx of 1 device (want ~4x)", r)
	}
}

func TestStableMemoryCommitAndCompression(t *testing.T) {
	// §5.4: commit-on-stable-write doesn't beat group commit in steady
	// state (the disk drain still bounds throughput), but compressing the
	// drained log to new-values-only does.
	plain := runFor(t, baseConfig(wal.StableMemory, 1), 5*time.Second)
	cfgC := baseConfig(wal.StableMemory, 1)
	cfgC.Log.Compress = true
	compressed := runFor(t, cfgC, 5*time.Second)

	group := runFor(t, baseConfig(wal.GroupCommit, 1), 5*time.Second)
	if plain.TPS() < 0.8*group.TPS() {
		t.Errorf("stable memory TPS %.1f far below group commit %.1f", plain.TPS(), group.TPS())
	}
	if r := compressed.TPS() / plain.TPS(); r < 1.25 {
		t.Errorf("compression lifted TPS only %.2fx (want ~1.5x)", r)
	}
	// The drain device saturates in both runs, so total BytesToDisk is
	// capped either way; the claim is per-transaction: compression ships
	// fewer log bytes to disk per committed transaction.
	perTxn := func(s Stats) float64 { return float64(s.Log.BytesToDisk) / float64(s.Committed) }
	if r := perTxn(compressed) / perTxn(plain); r > 0.85 {
		t.Errorf("compression shrank disk bytes per txn only %.2fx (want ≤0.85x)", r)
	}
}

func TestTransactionLogBytesMatchPaperArithmetic(t *testing.T) {
	// The paper's "typical transaction writes 400 bytes of log": ours
	// writes a 33-byte begin (29-byte header + 4-byte CRC trailer), three
	// updates of 33+2*46 bytes, and a 33-byte commit = 441 bytes, giving
	// ~9.3 commits per 4 KB page — hence the measured ~850 tps against
	// the idealized 1000.
	s := runFor(t, baseConfig(wal.GroupCommit, 1), 2*time.Second)
	perTxn := float64(s.Log.BytesLogged) / float64(s.Log.Commits)
	if perTxn < 435 || perTxn > 450 {
		t.Fatalf("log bytes per transaction = %.1f, expected ≈441", perTxn)
	}
	if m := s.Log.MeanGroupSize(); m < 7.5 || m > 9.4 {
		t.Fatalf("commits per page = %.2f, expected ≈9.3 bounded by partial fills", m)
	}
}

func TestHotAccountsProduceDependencies(t *testing.T) {
	cfg := baseConfig(wal.GroupCommit, 2)
	cfg.HotAccounts = 5
	cfg.Terminals = 20
	s := runFor(t, cfg, 2*time.Second)
	if s.MaxDepLists == 0 {
		t.Fatal("expected pre-commit dependencies with 5 hot accounts")
	}
	if s.Committed == 0 {
		t.Fatal("no transactions committed")
	}
}

// totalBalance sums all account balances; the workload's transfers are
// zero-sum, so any transaction-consistent state sums to zero.
func totalBalance(st *store.Store) int64 {
	var sum int64
	for i := 0; i < st.NumRecords(); i++ {
		v := st.Read(uint64(i))
		sum += int64(binary.BigEndian.Uint64(v[:8]))
	}
	return sum
}

// crashAndRecover runs the workload, captures the durable state at
// crashAt, recovers, and cross-checks the result.
func crashAndRecover(t *testing.T, cfg Config, runFor, crashAt time.Duration) (recovery.Info, *store.Store) {
	t.Helper()
	sim := &event.Sim{}
	e, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var in recovery.Input
	var crashErr error
	var ackedAtCrash []wal.TxnID
	sim.At(crashAt, func() {
		in, crashErr = e.CrashInput()
		// Capture the acknowledgement set inside the crash event: acks
		// delivered later within the same virtual instant (e.g. a stable-
		// memory commit triggered by a drain completing exactly now) are
		// after the crash.
		ackedAtCrash = e.AckedBy(crashAt)
	})
	e.Run(runFor)
	if crashErr != nil {
		t.Fatal(crashErr)
	}

	st, info, err := recovery.Recover(in)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle 1: transfers are zero-sum, so the recovered state must be.
	if sum := totalBalance(st); sum != 0 {
		t.Fatalf("recovered balance sum = %d, want 0", sum)
	}
	// Oracle 2: recovery from snapshot + start LSN must equal brute-force
	// replay of the whole log from the initial (all-zero) state.
	full, _, err := recovery.Recover(recovery.Input{
		NumRecords:     cfg.Accounts,
		RecSize:        in.RecSize,
		RecordsPerPage: in.RecordsPerPage,
		Log:            in.Log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Equal(full) {
		t.Fatal("recovered state differs from full log replay")
	}
	// Oracle 3: every commit acknowledged before the crash is durable.
	for _, id := range ackedAtCrash {
		if !info.Committed[id] {
			t.Fatalf("acked txn %d lost by recovery", id)
		}
	}
	return info, st
}

func TestCrashRecoveryAcrossPoliciesAndTimes(t *testing.T) {
	// Configs are factories: devices accumulate durable pages, so every
	// simulated run needs fresh ones.
	mk := func(policy wal.CommitPolicy, devices int, compress, ckpt bool, hot int) func() Config {
		return func() Config {
			cfg := baseConfig(policy, devices)
			cfg.Accounts = 512
			cfg.RecordsPerPage = 16
			cfg.Terminals = 20
			cfg.HotAccounts = hot
			cfg.Log.Compress = compress
			if ckpt {
				cfg.Checkpoint = true
				cfg.DataDevice = wal.NewDevice("data", 10*time.Millisecond)
			}
			return cfg
		}
	}
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"flush-per-commit", mk(wal.FlushPerCommit, 1, false, false, 0)},
		{"group-commit", mk(wal.GroupCommit, 1, false, false, 0)},
		{"group-commit-hot", mk(wal.GroupCommit, 1, false, false, 4)},
		{"group-commit-2dev", mk(wal.GroupCommit, 2, false, false, 0)},
		{"group-commit-4dev-hot", mk(wal.GroupCommit, 4, false, false, 6)},
		{"stable", mk(wal.StableMemory, 1, false, false, 0)},
		{"stable-compressed", mk(wal.StableMemory, 1, true, false, 0)},
		{"group-commit-ckpt", mk(wal.GroupCommit, 1, false, true, 0)},
		{"stable-compressed-ckpt", mk(wal.StableMemory, 1, true, true, 0)},
	}
	crashTimes := []time.Duration{
		3 * time.Millisecond,
		17 * time.Millisecond,
		101 * time.Millisecond,
		555 * time.Millisecond,
		999 * time.Millisecond,
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, at := range crashTimes {
				crashAndRecover(t, tc.cfg(), 1200*time.Millisecond, at)
			}
		})
	}
}

// TestQuickRandomCrashes is the property-based recovery check: random
// policies, contention levels, seeds and crash instants, all of which must
// satisfy the three oracles in crashAndRecover.
func TestQuickRandomCrashes(t *testing.T) {
	f := func(seed int64, policy8, hot8, devs8 uint8, crashMs uint16) bool {
		policies := []wal.CommitPolicy{wal.FlushPerCommit, wal.GroupCommit, wal.StableMemory}
		policy := policies[int(policy8)%len(policies)]
		devices := 1
		if policy == wal.GroupCommit {
			devices = int(devs8)%3 + 1
		}
		cfg := baseConfig(policy, devices)
		cfg.Accounts = 256
		cfg.RecordsPerPage = 16
		cfg.Terminals = 12
		cfg.Seed = seed
		if hot8%3 == 0 {
			cfg.HotAccounts = int(hot8)%8 + 3
		}
		if hot8%4 == 0 {
			cfg.Checkpoint = true
			cfg.DataDevice = wal.NewDevice("data", 5*time.Millisecond)
		}
		crashAt := time.Duration(int(crashMs)%700+1) * time.Millisecond
		crashAndRecover(t, cfg, 800*time.Millisecond, crashAt)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAbortedTransactionsLeaveNoTrace(t *testing.T) {
	cfg := baseConfig(wal.GroupCommit, 1)
	cfg.Accounts = 256
	cfg.Terminals = 10
	cfg.AbortEvery = 3
	sim := &event.Sim{}
	e, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Run(500 * time.Millisecond)
	if s.Aborted == 0 {
		t.Fatal("expected aborts")
	}
	if sum := totalBalance(e.Store()); sum != 0 {
		t.Fatalf("live balance sum %d after aborts, want 0", sum)
	}
	in, err := e.CrashInput()
	if err != nil {
		t.Fatal(err)
	}
	st, info, err := recovery.Recover(in)
	if err != nil {
		t.Fatal(err)
	}
	if sum := totalBalance(st); sum != 0 {
		t.Fatalf("recovered balance sum %d, want 0", sum)
	}
	if len(info.Ended) == 0 {
		t.Fatal("expected rolled-back (ended) transactions in the log")
	}
}

func TestCheckpointBoundsRedoWork(t *testing.T) {
	// §5.5: the stable first-update table lets recovery skip the log
	// prefix already reflected in checkpointed pages.
	mk := func(ckpt bool) recovery.Info {
		cfg := baseConfig(wal.GroupCommit, 1)
		cfg.Accounts = 256
		cfg.RecordsPerPage = 16
		cfg.Terminals = 30
		if ckpt {
			cfg.Checkpoint = true
			cfg.DataDevice = wal.NewDevice("data", time.Millisecond)
		}
		info, _ := crashAndRecover(t, cfg, 3*time.Second, 2900*time.Millisecond)
		return info
	}
	with := mk(true)
	without := mk(false)
	if with.Redone >= without.Redone {
		t.Fatalf("checkpointing should reduce redo: %d with vs %d without", with.Redone, without.Redone)
	}
	if with.Redone > without.Redone/2 {
		t.Logf("note: redo reduced only from %d to %d", without.Redone, with.Redone)
	}
}

func TestCleanShutdownRecoversToLiveState(t *testing.T) {
	cfg := baseConfig(wal.GroupCommit, 1)
	cfg.Accounts = 256
	cfg.Terminals = 10
	sim := &event.Sim{}
	e, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(300 * time.Millisecond) // Run drains in-flight work and flushes
	in, err := e.CrashInput()
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := recovery.Recover(in)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Equal(e.Store()) {
		t.Fatal("after a clean drain, recovery must reproduce the live store")
	}
}
