package txn

import (
	"testing"
	"time"

	"mmdb/internal/event"
	"mmdb/internal/wal"
)

// readerConfig builds a contended mixed workload: updaters over a small
// hot set, plus long read-only scans over the full database.
func readerConfig(versioning bool) Config {
	cfg := baseConfig(wal.GroupCommit, 1)
	cfg.Accounts = 64
	cfg.RecordsPerPage = 16
	cfg.Terminals = 20
	cfg.ReadOnlyTerminals = 8
	cfg.ReadAccounts = 64 // scan everything -> the zero-sum snapshot oracle applies
	cfg.ReadCPU = 2 * time.Millisecond
	cfg.Versioning = versioning
	return cfg
}

func TestVersionedSnapshotReadsAreConsistent(t *testing.T) {
	// Readers scan all 64 accounts over ~32ms of virtual time while 20
	// writers churn them; the engine panics if any snapshot sum is
	// non-zero (verifyReaderSum), so completing the run is the assertion.
	s := runFor(t, readerConfig(true), 2*time.Second)
	if s.ReadTxns == 0 {
		t.Fatal("no read transactions completed")
	}
	if s.Committed == 0 {
		t.Fatal("no writers committed")
	}
}

func TestVersioningBeatsSharedLocksUnderContention(t *testing.T) {
	// §6: "a versioning mechanism may provide superior performance for
	// memory resident systems." Under shared locks the full-database scans
	// stall every writer they overlap; with versioning writers are
	// untouched.
	locked := runFor(t, readerConfig(false), 3*time.Second)
	versioned := runFor(t, readerConfig(true), 3*time.Second)
	if versioned.Committed <= locked.Committed {
		t.Fatalf("versioning writer commits %d not above locking %d",
			versioned.Committed, locked.Committed)
	}
	if float64(versioned.Committed) < 1.5*float64(locked.Committed) {
		t.Errorf("expected a pronounced writer speedup: %d vs %d",
			versioned.Committed, locked.Committed)
	}
	if versioned.ReadTxns < locked.ReadTxns {
		t.Errorf("versioned readers slower: %d vs %d", versioned.ReadTxns, locked.ReadTxns)
	}
}

func TestLockedReadersAreAlsoConsistent(t *testing.T) {
	// Strict 2PL readers see a serializable full-scan too; check the
	// zero-sum property by hand (the engine's automatic oracle only covers
	// the versioned path).
	sim := &event.Sim{}
	cfg := readerConfig(false)
	e, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(1 * time.Second)
	// After the drain, no transaction is in flight: the live store must be
	// transaction-consistent.
	if sum := totalBalance(e.Store()); sum != 0 {
		t.Fatalf("live sum %d after drain", sum)
	}
}

func TestReaderAckWaitsForObservedCommits(t *testing.T) {
	// A versioned reader that observed a pre-committed transaction's data
	// must not be acknowledged before that transaction is durable. With a
	// slow log device and hot accounts, deps occur; the test asserts the
	// engine's accounting stays sane (acks never exceed starts) and that
	// read transactions do finish.
	cfg := readerConfig(true)
	cfg.HotAccounts = 8
	cfg.ReadAccounts = 8
	s := runFor(t, cfg, 2*time.Second)
	if s.ReadTxns == 0 {
		t.Fatal("no reads acknowledged")
	}
}

func TestVersionChainsArePruned(t *testing.T) {
	sim := &event.Sim{}
	cfg := readerConfig(true)
	e, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2 * time.Second)
	for rec, chain := range e.versions {
		if len(chain) > 256 {
			t.Fatalf("record %d version chain grew to %d entries", rec, len(chain))
		}
	}
}

func TestCrashRecoveryUnaffectedByVersioning(t *testing.T) {
	cfg := readerConfig(true)
	cfg.HotAccounts = 8
	for _, at := range []time.Duration{11 * time.Millisecond, 333 * time.Millisecond} {
		crashAndRecover(t, cfg, 600*time.Millisecond, at)
	}
}
