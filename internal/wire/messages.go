package wire

import (
	"fmt"

	"mmdb/internal/tuple"
)

// Hello is the client's opening frame (docs/WIRE.md §4.1): protocol
// version plus the connection's default query class and memory request.
type Hello struct {
	Version  byte
	Class    byte   // session class for queries that don't override
	MinPages uint32 // 0 = the broker's policy default
}

// EncodeHello renders a HELLO payload.
func EncodeHello(h Hello) []byte {
	b := []byte{h.Version, h.Class}
	return appendU32(b, h.MinPages)
}

// DecodeHello parses a HELLO payload.
func DecodeHello(p []byte) (Hello, error) {
	r := &reader{b: p}
	h := Hello{Version: r.u8(), Class: r.u8(), MinPages: r.u32()}
	return h, r.done()
}

// Node roles carried in the version-3 WELCOME tail (docs/WIRE.md §7.1).
const (
	RoleUnknown = 0 // pre-v3 peer, or the server declined to say
	RolePrimary = 1 // the node accepts writes
	RoleReplica = 2 // read-only: writes answer NOT_PRIMARY
)

// Welcome is the server's HELLO response (docs/WIRE.md §4.1). On a
// version-3 connection it also announces the node's role and the cluster
// epoch — the client learns before its first statement whether this node
// takes writes, and can order role information from different nodes by
// epoch.
type Welcome struct {
	Version byte
	Server  string
	Role    byte   // Role*; RoleUnknown on pre-v3 connections
	Epoch   uint64 // cluster epoch; 0 when unknown / standalone
}

// EncodeWelcome renders a WELCOME payload in version-1/2 layout.
func EncodeWelcome(w Welcome) []byte {
	return appendString16([]byte{w.Version}, w.Server)
}

// EncodeWelcomeV3 renders a WELCOME payload with the version-3 tail
// ([role u8][epoch u64] after the server name). Only send it on a
// connection that negotiated version >= 3.
func EncodeWelcomeV3(w Welcome) []byte {
	b := append(EncodeWelcome(w), w.Role)
	return appendU64(b, w.Epoch)
}

// DecodeWelcome parses a WELCOME payload, accepting both layouts: the
// tail is read only when bytes remain, so pre-v3 frames decode with
// Role = RoleUnknown.
func DecodeWelcome(p []byte) (Welcome, error) {
	r := &reader{b: p}
	w := Welcome{Version: r.u8(), Server: r.string16(), Role: RoleUnknown}
	if r.err == nil && len(r.b) > 0 {
		w.Role = r.u8()
		w.Epoch = r.u64()
	}
	return w, r.done()
}

// ClassDefault in Query.Class means "use the connection's HELLO class".
const ClassDefault = 0xFF

// PrefDefault in Query.Pref means "no read preference attached": the
// server routes the statement as if the client were version 1 (reads go
// to the primary, or wherever the server's own default sends them).
const PrefDefault = 0xFF

// Read-preference modes carried in the version-2 QUERY tail; they map
// 1:1 onto the engine's ReadPreference modes (docs/WIRE.md §4.2).
const (
	PrefPrimary = 0 // mmdb.ReadPrimary
	PrefNearest = 1 // mmdb.ReadNearest
	PrefBounded = 2 // mmdb.ReadBounded; MaxLag carries the LSN bound
)

// Query is one statement request (docs/WIRE.md §4.2). Class and
// MinPages override the connection defaults per query — this is how the
// engine's WithClass/WithMinPages session options travel end to end.
// Pref/MaxLag are the version-2 read-preference tail: when Pref is not
// PrefDefault a cluster-backed server routes the statement's reads by
// the carried preference, exactly like mmdb.WithReadPreference.
type Query struct {
	Class    byte   // ClassDefault = connection default
	MinPages uint32 // 0 = connection default
	SQL      string
	Pref     byte   // PrefDefault = none; else Pref* mode (v2 only)
	MaxLag   uint64 // LSN bound for PrefBounded
}

// EncodeQuery renders a QUERY payload in version-1 layout. Use it when
// the negotiated version is 1 or the statement carries no preference.
func EncodeQuery(q Query) []byte {
	b := []byte{q.Class}
	b = appendU32(b, q.MinPages)
	return appendString32(b, q.SQL)
}

// EncodeQueryV2 renders a QUERY payload with the version-2 tail
// ([pref u8][max_lag u64] after the SQL). Only send it on a connection
// that negotiated version >= 2: a version-1 decoder treats the tail as
// trailing garbage and kills the connection.
func EncodeQueryV2(q Query) []byte {
	b := EncodeQuery(q)
	b = append(b, q.Pref)
	return appendU64(b, q.MaxLag)
}

// DecodeQuery parses a QUERY payload, accepting both layouts: the tail
// is read only when bytes remain after the SQL, so version-1 frames
// decode with Pref = PrefDefault.
func DecodeQuery(p []byte) (Query, error) {
	r := &reader{b: p}
	q := Query{Class: r.u8(), MinPages: r.u32(), SQL: r.string32(), Pref: PrefDefault}
	if r.err == nil && len(r.b) > 0 {
		q.Pref = r.u8()
		q.MaxLag = r.u64()
	}
	return q, r.done()
}

// FieldDesc describes one result column (docs/WIRE.md §4.3): its name,
// value kind, and the byte width of string columns.
type FieldDesc struct {
	Name string
	Kind tuple.Kind
	Size uint16
}

// Result heads a statement's response (docs/WIRE.md §4.3). Row-returning
// statements carry the result schema in Fields; INSERT/DELETE carry an
// empty Fields and the affected-row count.
type Result struct {
	Affected int64
	Fields   []FieldDesc
}

// EncodeResult renders a RESULT payload.
func EncodeResult(res Result) []byte {
	b := appendI64(nil, res.Affected)
	b = appendU16(b, uint16(len(res.Fields)))
	for _, f := range res.Fields {
		b = appendString16(b, f.Name)
		b = append(b, byte(f.Kind))
		b = appendU16(b, f.Size)
	}
	return b
}

// DecodeResult parses a RESULT payload.
func DecodeResult(p []byte) (Result, error) {
	r := &reader{b: p}
	res := Result{Affected: r.i64()}
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		res.Fields = append(res.Fields, FieldDesc{
			Name: r.string16(),
			Kind: tuple.Kind(r.u8()),
			Size: r.u16(),
		})
	}
	return res, r.done()
}

// Schema reconstructs the tuple schema a RESULT describes (nil for
// statement results). The fixed-width encoding makes ROWS frames raw
// concatenated tuples — this schema decodes them.
func (res Result) Schema() (*tuple.Schema, error) {
	if len(res.Fields) == 0 {
		return nil, nil
	}
	fields := make([]tuple.Field, len(res.Fields))
	for i, f := range res.Fields {
		fields[i] = tuple.Field{Name: f.Name, Kind: f.Kind, Size: int(f.Size)}
	}
	return tuple.NewSchema(fields...)
}

// EncodeRows renders a ROWS payload (docs/WIRE.md §4.4): a u16 row count
// followed by the rows' raw fixed-width tuple bytes.
func EncodeRows(rows []tuple.Tuple) []byte {
	b := appendU16(nil, uint16(len(rows)))
	for _, t := range rows {
		b = append(b, t...)
	}
	return b
}

// DecodeRows parses a ROWS payload against the result schema's tuple
// width.
func DecodeRows(p []byte, schema *tuple.Schema) ([]tuple.Tuple, error) {
	if schema == nil {
		return nil, fmt.Errorf("wire: ROWS frame for a statement result")
	}
	r := &reader{b: p}
	n := int(r.u16())
	w := schema.Width()
	rows := make([]tuple.Tuple, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		rows = append(rows, tuple.Tuple(r.bytes(w)))
	}
	return rows, r.done()
}

// Done closes a successful response (docs/WIRE.md §4.5): the row count,
// the statement's six virtual counters, its virtual elapsed time, and
// the wall time the session queued for admission.
type Done struct {
	RowCount  uint32
	Counters  [6]int64 // comps, hashes, moves, swaps, seqIOs, randIOs
	ElapsedNS int64
	QueuedNS  int64
}

// EncodeDone renders a DONE payload.
func EncodeDone(d Done) []byte {
	b := appendU32(nil, d.RowCount)
	for _, c := range d.Counters {
		b = appendI64(b, c)
	}
	b = appendI64(b, d.ElapsedNS)
	return appendI64(b, d.QueuedNS)
}

// DecodeDone parses a DONE payload.
func DecodeDone(p []byte) (Done, error) {
	r := &reader{b: p}
	d := Done{RowCount: r.u32()}
	for i := range d.Counters {
		d.Counters[i] = r.i64()
	}
	d.ElapsedNS = r.i64()
	d.QueuedNS = r.i64()
	return d, r.done()
}

// ErrorFrame reports a failed statement or protocol violation
// (docs/WIRE.md §5).
type ErrorFrame struct {
	Code uint16
	Msg  string
}

// EncodeError renders an ERROR payload.
func EncodeError(e ErrorFrame) []byte {
	return appendString16(appendU16(nil, e.Code), e.Msg)
}

// DecodeError parses an ERROR payload.
func DecodeError(p []byte) (ErrorFrame, error) {
	r := &reader{b: p}
	e := ErrorFrame{Code: r.u16(), Msg: r.string16()}
	return e, r.done()
}

// NotPrimary reports a write refused because this node is not the
// cluster's current primary (docs/WIRE.md §7.2). Epoch orders the
// information (a higher epoch supersedes a lower one) and Hint is the
// address — or, when the server has no address book, the node name — of
// the primary at that epoch, so a client can redirect instead of
// retrying blindly. The connection stays open: reads still work here.
type NotPrimary struct {
	Epoch uint64
	Hint  string
	Msg   string
}

// EncodeNotPrimary renders a NOT_PRIMARY payload.
func EncodeNotPrimary(np NotPrimary) []byte {
	b := appendU64(nil, np.Epoch)
	b = appendString16(b, np.Hint)
	return appendString16(b, np.Msg)
}

// DecodeNotPrimary parses a NOT_PRIMARY payload.
func DecodeNotPrimary(p []byte) (NotPrimary, error) {
	r := &reader{b: p}
	np := NotPrimary{Epoch: r.u64(), Hint: r.string16(), Msg: r.string16()}
	return np, r.done()
}

// Overload reports an admission rejection (docs/WIRE.md §5.2): the
// statement was shed by the scheduler, the connection remains usable.
// Class and Depth mirror the engine's OverloadError so clients can
// rebuild it with errors.Is/As fidelity.
type Overload struct {
	Class byte
	Depth uint32
	Msg   string
}

// EncodeOverload renders an OVERLOAD payload.
func EncodeOverload(o Overload) []byte {
	b := appendU32([]byte{o.Class}, o.Depth)
	return appendString16(b, o.Msg)
}

// DecodeOverload parses an OVERLOAD payload.
func DecodeOverload(p []byte) (Overload, error) {
	r := &reader{b: p}
	o := Overload{Class: r.u8(), Depth: r.u32(), Msg: r.string16()}
	return o, r.done()
}
