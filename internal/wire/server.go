package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mmdb"
	sqlfront "mmdb/internal/sql"
)

// RowBatch is how many result rows a ROWS frame carries at most.
const RowBatch = 256

// Server serves the wire protocol over TCP, multiplexing connections
// onto the engine's session scheduler: every QUERY frame runs in its
// own admitted session under the frame's (or the connection's) query
// class and memory request, so the priority-class admission machinery —
// including ErrOverloaded shedding — operates per statement, end to end.
type Server struct {
	DB   *mmdb.Database
	Name string // reported in WELCOME

	// Cluster, when set, routes every statement through the cluster's
	// read routing: SELECTs go to a replica or the primary per the
	// statement's read preference (the v2 QUERY tail), writes always to
	// the primary. DB may be left nil; it defaults to Cluster.Primary().
	Cluster *mmdb.Cluster

	// Node, when set alongside Cluster, makes this server one stable
	// cluster node instead of a routing front door: every statement runs
	// on that node's database, whatever role it currently holds. Writes
	// against it while it is not the primary answer NOT_PRIMARY (v3) with
	// a hint to the current primary — exactly what a client sees when its
	// primary is demoted under it.
	Node string

	// Peers maps node names to dialable addresses; NOT_PRIMARY hints are
	// translated through it so clients receive an address, not an
	// internal node name.
	Peers map[string]string

	// IdleTimeout, when positive, bounds how long a connection may sit
	// between frames: the read deadline is re-armed before every frame,
	// so a severed or silent peer is collected in bounded time instead of
	// pinning a handler goroutine forever. Clients keep a quiet
	// connection alive with PING.
	IdleTimeout time.Duration

	lis    net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	stats Stats
}

// Stats counts server activity (atomic snapshot via Stats()).
type Stats struct {
	Connections atomic.Uint64 // accepted connections
	Queries     atomic.Uint64 // QUERY frames served (any outcome)
	Errors      atomic.Uint64 // ERROR frames sent
	Overloads   atomic.Uint64 // OVERLOAD frames sent
	NotPrimary  atomic.Uint64 // NOT_PRIMARY refusals (v3 frame or v<3 ERROR)
}

// Stats returns the server's activity counters.
func (srv *Server) Stats() *Stats { return &srv.stats }

// Listen binds addr (e.g. "127.0.0.1:0") without serving yet; the
// returned address carries the chosen port.
func (srv *Server) Listen(addr string) (net.Addr, error) {
	if srv.Node != "" && srv.Cluster == nil {
		return nil, fmt.Errorf("wire: Node %q set without a Cluster", srv.Node)
	}
	if srv.DB == nil && srv.Cluster != nil {
		if srv.Node != "" {
			if srv.DB = srv.Cluster.DatabaseOf(srv.Node); srv.DB == nil {
				return nil, fmt.Errorf("wire: cluster has no node %q", srv.Node)
			}
		} else {
			srv.DB = srv.Cluster.Primary()
		}
	}
	if srv.DB == nil {
		return nil, fmt.Errorf("wire: server has no database")
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv.mu.Lock()
	srv.lis = lis
	srv.conns = make(map[net.Conn]struct{})
	srv.mu.Unlock()
	return lis.Addr(), nil
}

// Serve accepts connections until Close; each connection is handled on
// its own goroutine (one goroutine per connection, one session per
// query). Serve returns nil after Close.
func (srv *Server) Serve() error {
	srv.mu.Lock()
	lis := srv.lis
	srv.mu.Unlock()
	if lis == nil {
		return fmt.Errorf("wire: Serve before Listen")
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			srv.mu.Lock()
			closed := srv.closed
			srv.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		srv.mu.Lock()
		if srv.closed {
			srv.mu.Unlock()
			conn.Close()
			return nil
		}
		srv.conns[conn] = struct{}{}
		srv.mu.Unlock()
		srv.stats.Connections.Add(1)
		srv.wg.Add(1)
		go func() {
			defer srv.wg.Done()
			defer func() {
				srv.mu.Lock()
				delete(srv.conns, conn)
				srv.mu.Unlock()
				conn.Close()
			}()
			srv.handleConn(conn)
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (srv *Server) ListenAndServe(addr string) error {
	if _, err := srv.Listen(addr); err != nil {
		return err
	}
	return srv.Serve()
}

// Shutdown drains the server gracefully: stop accepting, let in-flight
// connections finish on their own, and only when ctx expires force-close
// whatever is still open (returning ctx's error so the caller knows the
// drain was cut short). Close is Shutdown with an already-expired
// context.
func (srv *Server) Shutdown(ctx context.Context) error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return nil
	}
	srv.closed = true
	lis := srv.lis
	srv.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	done := make(chan struct{})
	go func() {
		srv.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		srv.mu.Lock()
		for c := range srv.conns {
			c.Close()
		}
		srv.mu.Unlock()
		<-done
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// Close stops accepting, closes every live connection and waits for
// their handlers to finish.
func (srv *Server) Close() error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return nil
	}
	srv.closed = true
	lis := srv.lis
	for c := range srv.conns {
		c.Close()
	}
	srv.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	srv.wg.Wait()
	return err
}

// protoError sends a CodeProto ERROR and signals the caller to close
// the connection (docs/WIRE.md §5.1: protocol errors are fatal to the
// connection, statement errors are not).
func (srv *Server) protoError(conn net.Conn, format string, args ...any) {
	srv.stats.Errors.Add(1)
	_ = WriteFrame(conn, TError, EncodeError(ErrorFrame{Code: CodeProto, Msg: fmt.Sprintf(format, args...)}))
}

// readFrame reads one frame under the idle deadline: a peer that stays
// silent past IdleTimeout fails the read and the handler exits, so
// severed connections die in bounded time.
func (srv *Server) readFrame(conn net.Conn) (byte, []byte, error) {
	if srv.IdleTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(srv.IdleTimeout))
	}
	return ReadFrame(conn)
}

// roleEpoch reports what the version-3 WELCOME announces: this node's
// current role and the cluster epoch. A standalone database and the
// routing front door both take writes, so they report primary.
func (srv *Server) roleEpoch() (byte, uint64) {
	if srv.Cluster == nil {
		return RolePrimary, 0
	}
	if srv.Node != "" && !srv.Cluster.IsPrimary(srv.Node) {
		return RoleReplica, srv.Cluster.Epoch()
	}
	return RolePrimary, srv.Cluster.Epoch()
}

func (srv *Server) handleConn(conn net.Conn) {
	// HELLO/WELCOME version and default negotiation (docs/WIRE.md §4.1).
	typ, payload, err := srv.readFrame(conn)
	if err != nil {
		return
	}
	if typ != THello {
		srv.protoError(conn, "expected HELLO, got frame type 0x%02X", typ)
		return
	}
	hello, err := DecodeHello(payload)
	if err != nil {
		srv.protoError(conn, "bad HELLO: %v", err)
		return
	}
	if hello.Version < MinVersion {
		srv.protoError(conn, "protocol version %d not supported (server speaks %d..%d)", hello.Version, MinVersion, Version)
		return
	}
	// Negotiate down to the older of the two speakers; WELCOME announces
	// the version the connection will actually use, and a v1 connection
	// simply never carries the v2 QUERY tail.
	version := hello.Version
	if version > Version {
		version = Version
	}
	if _, err := classOf(hello.Class); err != nil {
		srv.protoError(conn, "%v", err)
		return
	}
	welcome := Welcome{Version: version, Server: srv.Name}
	var wp []byte
	if version >= 3 {
		welcome.Role, welcome.Epoch = srv.roleEpoch()
		wp = EncodeWelcomeV3(welcome)
	} else {
		wp = EncodeWelcome(welcome)
	}
	if err := WriteFrame(conn, TWelcome, wp); err != nil {
		return
	}

	for {
		typ, payload, err := srv.readFrame(conn)
		if err != nil {
			return // EOF, idle timeout, or broken connection
		}
		switch typ {
		case TPing:
			if err := WriteFrame(conn, TPong, nil); err != nil {
				return
			}
		case TQuery:
			q, err := DecodeQuery(payload)
			if err != nil {
				srv.protoError(conn, "bad QUERY: %v", err)
				return
			}
			if !srv.serveQuery(conn, hello, version, q) {
				return
			}
		default:
			srv.protoError(conn, "unexpected frame type 0x%02X", typ)
			return
		}
	}
}

// newSession admits the statement's session. A node server always runs
// on its own node's database — clients route, nodes don't — so a write
// against a demoted node fails into the NOT_PRIMARY path rather than
// being silently forwarded. A front door (Cluster set, Node empty) uses
// the cluster's read routing: SELECTs may land on a replica per the
// statement's preference, writes on the primary. A plain server runs
// directly on its database.
func (srv *Server) newSession(sql string, opts []mmdb.SessionOption) (*mmdb.Session, error) {
	if srv.Cluster != nil && srv.Node == "" {
		return srv.Cluster.SessionFor(context.Background(), sql, opts...)
	}
	db := srv.DB
	if srv.Cluster != nil {
		if d := srv.Cluster.DatabaseOf(srv.Node); d != nil {
			db = d
		}
	}
	return db.NewSession(context.Background(), opts...)
}

// prefOf maps a wire preference byte onto the engine's ReadPreference.
func prefOf(b byte, maxLag uint64) (mmdb.ReadPreference, error) {
	switch b {
	case PrefPrimary:
		return mmdb.PrimaryOnly(), nil
	case PrefNearest:
		return mmdb.NearestReplica(), nil
	case PrefBounded:
		return mmdb.BoundedStaleness(maxLag), nil
	default:
		return mmdb.ReadPreference{}, fmt.Errorf("wire: unknown read preference %d", b)
	}
}

// classOf validates a wire class byte.
func classOf(b byte) (mmdb.QueryClass, error) {
	c := mmdb.QueryClass(b)
	if int(c) < 0 || int(c) >= mmdb.NumClasses {
		return 0, fmt.Errorf("wire: unknown query class %d", b)
	}
	return c, nil
}

// serveQuery runs one statement in a fresh session and writes its
// response frames. It returns false when the connection must close
// (write failure or protocol error); statement failures — including
// overload shedding — keep the connection alive.
func (srv *Server) serveQuery(conn net.Conn, hello Hello, version byte, q Query) bool {
	srv.stats.Queries.Add(1)
	classByte := q.Class
	if classByte == ClassDefault {
		classByte = hello.Class
	}
	class, err := classOf(classByte)
	if err != nil {
		srv.protoError(conn, "%v", err)
		return false
	}
	minPages := q.MinPages
	if minPages == 0 {
		minPages = hello.MinPages
	}
	opts := []mmdb.SessionOption{mmdb.WithClass(class)}
	if minPages > 0 {
		opts = append(opts, mmdb.WithMinPages(int(minPages)))
	}
	if q.Pref != PrefDefault {
		pref, err := prefOf(q.Pref, q.MaxLag)
		if err != nil {
			srv.protoError(conn, "%v", err)
			return false
		}
		opts = append(opts, mmdb.WithReadPreference(pref))
	}

	sess, err := srv.newSession(q.SQL, opts)
	if err != nil {
		var ov *mmdb.OverloadError
		if errors.As(err, &ov) {
			srv.stats.Overloads.Add(1)
			return WriteFrame(conn, TOverload, EncodeOverload(Overload{
				Class: byte(ov.Class),
				Depth: uint32(ov.Depth),
				Msg:   ov.Error(),
			})) == nil
		}
		return srv.writeQueryError(conn, version, err)
	}
	res, err := sess.Query(q.SQL)
	queued := sess.QueuedFor()
	sess.Close()
	if err != nil {
		return srv.writeQueryError(conn, version, err)
	}

	result := Result{Affected: res.Affected}
	if res.Schema != nil {
		for i := 0; i < res.Schema.NumFields(); i++ {
			f := res.Schema.Field(i)
			result.Fields = append(result.Fields, FieldDesc{Name: f.Name, Kind: f.Kind, Size: uint16(f.Size)})
		}
	}
	if err := WriteFrame(conn, TResult, EncodeResult(result)); err != nil {
		return false
	}
	for i := 0; i < len(res.Rows); i += RowBatch {
		end := i + RowBatch
		if end > len(res.Rows) {
			end = len(res.Rows)
		}
		if err := WriteFrame(conn, TRows, EncodeRows(res.Rows[i:end])); err != nil {
			return false
		}
	}
	c := res.Counters
	return WriteFrame(conn, TDone, EncodeDone(Done{
		RowCount:  uint32(len(res.Rows)),
		Counters:  [6]int64{c.Comps, c.Hashes, c.Moves, c.Swaps, c.SeqIOs, c.RandIOs},
		ElapsedNS: int64(res.Elapsed),
		QueuedNS:  int64(queued),
	})) == nil
}

// writeQueryError answers a failed statement. A write refused because
// this node is not the primary becomes a NOT_PRIMARY frame on v3
// connections — epoch plus a dialable hint (the primary's address when
// Peers knows it) — so the client redirects instead of guessing from a
// message string; older connections get a plain CodeExec ERROR. The
// connection stays open either way.
func (srv *Server) writeQueryError(conn net.Conn, version byte, err error) bool {
	var np *mmdb.NotPrimaryError
	if errors.As(err, &np) {
		srv.stats.NotPrimary.Add(1)
		if version >= 3 {
			hint := np.Hint
			if addr, ok := srv.Peers[np.Hint]; ok {
				hint = addr
			}
			return WriteFrame(conn, TNotPrimary, EncodeNotPrimary(NotPrimary{
				Epoch: np.Epoch,
				Hint:  hint,
				Msg:   err.Error(),
			})) == nil
		}
	}
	srv.stats.Errors.Add(1)
	return WriteFrame(conn, TError, EncodeError(ErrorFrame{Code: errCode(err), Msg: err.Error()})) == nil
}

// errCode maps a statement failure onto the WIRE.md §5 code space.
func errCode(err error) uint16 {
	var se *sqlfront.Error
	if errors.As(err, &se) {
		if se.Code == sqlfront.ErrLex || se.Code == sqlfront.ErrSyntax {
			return CodeParse
		}
		return CodeSemantic
	}
	return CodeExec
}
