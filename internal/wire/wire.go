// Package wire implements the engine's length-prefixed TCP protocol:
// the frame layer, the typed messages, and the server that multiplexes
// connections onto the session scheduler. The byte-level layout is
// specified in docs/WIRE.md — that document is the contract; the
// round-trip tests here cover every frame type it defines.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Version is the newest protocol version this package speaks; the
// HELLO/WELCOME handshake negotiates min(client, server) and both sides
// then frame to the negotiated version. Version 2 adds the per-statement
// read-preference tail to QUERY (docs/WIRE.md §4.2); version 3 adds the
// role/epoch tail to WELCOME and the NOT_PRIMARY error frame
// (docs/WIRE.md §7).
const Version = 3

// MinVersion is the oldest version the server still accepts in HELLO.
const MinVersion = 1

// MaxFrame bounds a frame's length prefix (type byte + payload); larger
// frames are a protocol error and close the connection.
const MaxFrame = 16 << 20

// Frame types (docs/WIRE.md §3). Requests have the high bit clear,
// responses set; errors live at 0xE0+.
const (
	THello      = 0x01
	TQuery      = 0x02
	TPing       = 0x03
	TWelcome    = 0x81
	TResult     = 0x82
	TRows       = 0x83
	TDone       = 0x84
	TPong       = 0x85
	TError      = 0xE0
	TOverload   = 0xE1
	TNotPrimary = 0xE2
)

// Error codes carried by ERROR frames (docs/WIRE.md §5).
const (
	// CodeParse: the statement failed SQL.md §7.1/§7.2 (lex/syntax).
	CodeParse = 1
	// CodeSemantic: the statement failed SQL.md §7.3–§7.7 (binding).
	CodeSemantic = 2
	// CodeExec: the statement failed during execution.
	CodeExec = 3
	// CodeProto: the peer violated this protocol; the connection closes.
	CodeProto = 4
)

// WriteFrame writes one frame: u32 big-endian length of (type byte +
// payload), the type byte, then the payload.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", len(payload)+1)
	}
	hdr := make([]byte, 5, 5+len(payload))
	binary.BigEndian.PutUint32(hdr, uint32(len(payload)+1))
	hdr[4] = typ
	_, err := w.Write(append(hdr, payload...))
	return err
}

// ReadFrame reads one frame, returning its type byte and payload.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Primitive payload encoders. Integers are big-endian; strings are
// length-prefixed (u16 for names and messages, u32 for SQL text).

func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return binary.BigEndian.AppendUint64(b, uint64(v)) }

func appendString16(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

func appendString32(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// reader is a cursor over a frame payload; decode errors stick.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated payload")
	}
	r.b = nil
}

func (r *reader) u8() byte {
	if len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u16() uint16 {
	if len(r.b) < 2 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *reader) u32() uint32 {
	if len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) i64() int64 {
	if len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := int64(binary.BigEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func (r *reader) bytes(n int) []byte {
	if n < 0 || len(r.b) < n {
		r.fail()
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *reader) string16() string { return string(r.bytes(int(r.u16()))) }
func (r *reader) string32() string { return string(r.bytes(int(r.u32()))) }

// done checks the payload was consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("wire: %d trailing payload bytes", len(r.b))
	}
	return nil
}
