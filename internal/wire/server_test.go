package wire

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"mmdb"
)

// newServer starts a wire server over a tiny database and returns a
// connected raw TCP conn that has already completed HELLO/WELCOME.
func newServer(t *testing.T) (*mmdb.Database, *Server, net.Conn) {
	t.Helper()
	db := mmdb.MustOpen(mmdb.Options{MemoryPages: 64, MaxConcurrentQueries: 2})
	emp, err := db.CreateRelation("emp", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "salary", Kind: mmdb.Int64},
		mmdb.Field{Name: "name", Kind: mmdb.String, Size: 8},
	))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"ada", "bob", "cyd", "dee"}
	for i, n := range names {
		if err := emp.Insert(mmdb.IntValue(int64(i+1)), mmdb.IntValue(int64(100*(i+1))), mmdb.StringValue(n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := emp.Flush(); err != nil {
		t.Fatal(err)
	}

	srv := &Server{DB: db, Name: "mmdb test"}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := WriteFrame(conn, THello, EncodeHello(Hello{Version: Version, Class: byte(mmdb.Batch)})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil || typ != TWelcome {
		t.Fatalf("handshake: type 0x%02X err %v", typ, err)
	}
	w, err := DecodeWelcome(payload)
	if err != nil || w.Version != Version || w.Server != "mmdb test" {
		t.Fatalf("WELCOME %+v err %v", w, err)
	}
	return db, srv, conn
}

// runQuery drives one QUERY round trip at the raw frame level and
// collects the full RESULT/ROWS/DONE (or ERROR/OVERLOAD) response.
func runQuery(t *testing.T, conn net.Conn, q Query) (Result, []mmdb.Tuple, Done, *ErrorFrame, *Overload) {
	t.Helper()
	if err := WriteFrame(conn, TQuery, EncodeQuery(q)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	switch typ {
	case TError:
		e, err := DecodeError(payload)
		if err != nil {
			t.Fatal(err)
		}
		return Result{}, nil, Done{}, &e, nil
	case TOverload:
		o, err := DecodeOverload(payload)
		if err != nil {
			t.Fatal(err)
		}
		return Result{}, nil, Done{}, nil, &o
	case TResult:
	default:
		t.Fatalf("unexpected frame type 0x%02X", typ)
	}
	res, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := res.Schema()
	if err != nil {
		t.Fatal(err)
	}
	var rows []mmdb.Tuple
	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if typ == TDone {
			d, err := DecodeDone(payload)
			if err != nil {
				t.Fatal(err)
			}
			if int(d.RowCount) != len(rows) {
				t.Fatalf("DONE says %d rows, got %d", d.RowCount, len(rows))
			}
			return res, rows, d, nil, nil
		}
		if typ != TRows {
			t.Fatalf("unexpected frame type 0x%02X mid-response", typ)
		}
		batch, err := DecodeRows(payload, schema)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range batch {
			rows = append(rows, mmdb.Tuple(r))
		}
	}
}

// TestServerQuery checks a full statement round trip: the rows and the
// per-query virtual counters that arrive over the wire must be exactly
// the ones a direct Session call produces.
func TestServerQuery(t *testing.T) {
	db, _, conn := newServer(t)
	const q = "SELECT id, name FROM emp WHERE salary >= 200 ORDER BY id DESC"

	direct, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	res, rows, done, ef, ov := runQuery(t, conn, Query{Class: ClassDefault, SQL: q})
	if ef != nil || ov != nil {
		t.Fatalf("query failed: err=%+v overload=%+v", ef, ov)
	}
	if len(res.Fields) != 2 || res.Fields[0].Name != "id" || res.Fields[1].Name != "name" {
		t.Fatalf("result fields %+v", res.Fields)
	}
	if len(rows) != len(direct.Rows) {
		t.Fatalf("wire %d rows, direct %d", len(rows), len(direct.Rows))
	}
	for i := range rows {
		if !bytes.Equal(rows[i], direct.Rows[i]) {
			t.Fatalf("row %d: wire %x direct %x", i, rows[i], direct.Rows[i])
		}
	}
	c := direct.Counters
	if done.Counters != [6]int64{c.Comps, c.Hashes, c.Moves, c.Swaps, c.SeqIOs, c.RandIOs} {
		t.Fatalf("wire counters %v, direct %+v", done.Counters, c)
	}
	if done.Counters == ([6]int64{}) {
		t.Fatal("counters are all zero; the query charged nothing")
	}

	// An INSERT comes back as a statement result with Affected set, and
	// the connection keeps serving afterward.
	res, rows, _, ef, ov = runQuery(t, conn, Query{Class: ClassDefault,
		SQL: "INSERT INTO emp (id, salary, name) VALUES (5, 500, 'eli')"})
	if ef != nil || ov != nil {
		t.Fatalf("insert failed: err=%+v overload=%+v", ef, ov)
	}
	if res.Affected != 1 || len(res.Fields) != 0 || len(rows) != 0 {
		t.Fatalf("insert result %+v rows %d", res, len(rows))
	}
	_, rows, _, ef, _ = runQuery(t, conn, Query{Class: ClassDefault, SQL: "SELECT id FROM emp"})
	if ef != nil || len(rows) != 5 {
		t.Fatalf("after insert: err=%+v rows=%d", ef, len(rows))
	}
}

// TestServerStatementErrors checks the docs/WIRE.md §5 code mapping and
// that statement failures leave the connection usable.
func TestServerStatementErrors(t *testing.T) {
	_, srv, conn := newServer(t)
	cases := []struct {
		sql  string
		code uint16
		frag string
	}{
		{"SELEC id FROM emp", CodeParse, "§7.2"},
		{"SELECT id FROM nope", CodeSemantic, "§7.3"},
		{"SELECT wat FROM emp", CodeSemantic, "§7.4"},
	}
	for _, tc := range cases {
		_, _, _, ef, _ := runQuery(t, conn, Query{Class: ClassDefault, SQL: tc.sql})
		if ef == nil {
			t.Fatalf("%q: expected ERROR frame", tc.sql)
		}
		if ef.Code != tc.code || !strings.Contains(ef.Msg, tc.frag) {
			t.Fatalf("%q: got code %d msg %q", tc.sql, ef.Code, ef.Msg)
		}
	}
	// Connection still works after three failed statements.
	_, rows, _, ef, _ := runQuery(t, conn, Query{Class: ClassDefault, SQL: "SELECT id FROM emp"})
	if ef != nil || len(rows) != 4 {
		t.Fatalf("after errors: err=%+v rows=%d", ef, len(rows))
	}
	if got := srv.Stats().Errors.Load(); got != 3 {
		t.Fatalf("server counted %d errors, want 3", got)
	}
}

// TestServerPingAndProto checks PING/PONG and that protocol violations
// get a CodeProto ERROR and a closed connection.
func TestServerPingAndProto(t *testing.T) {
	_, _, conn := newServer(t)
	if err := WriteFrame(conn, TPing, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil || typ != TPong || len(payload) != 0 {
		t.Fatalf("PING: type 0x%02X payload %v err %v", typ, payload, err)
	}

	// A response-type frame from a client is a protocol violation: the
	// server answers CodeProto and hangs up.
	if err := WriteFrame(conn, TWelcome, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = ReadFrame(conn)
	if err != nil || typ != TError {
		t.Fatalf("proto violation: type 0x%02X err %v", typ, err)
	}
	e, err := DecodeError(payload)
	if err != nil || e.Code != CodeProto {
		t.Fatalf("proto violation: %+v err %v", e, err)
	}
	if _, _, err := ReadFrame(conn); err == nil {
		t.Fatal("connection stayed open after protocol violation")
	}
}

// TestServerHelloVersion checks HELLO version negotiation: the server
// answers min(client, server), still speaks version-1 connections, and
// rejects versions below MinVersion with CodeProto.
func TestServerHelloVersion(t *testing.T) {
	db := mmdb.MustOpen(mmdb.Options{MemoryPages: 16})
	srv := &Server{DB: db}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	dial := func() net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		return conn
	}

	// A client ahead of the server negotiates down to the server's max;
	// a version-1 client gets a version-1 connection.
	for _, tc := range []struct{ client, want byte }{{99, Version}, {1, 1}, {Version, Version}} {
		conn := dial()
		if err := WriteFrame(conn, THello, EncodeHello(Hello{Version: tc.client})); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := ReadFrame(conn)
		if err != nil || typ != TWelcome {
			t.Fatalf("client v%d: type 0x%02X err %v", tc.client, typ, err)
		}
		w, err := DecodeWelcome(payload)
		if err != nil || w.Version != tc.want {
			t.Fatalf("client v%d: negotiated %d, want %d (err %v)", tc.client, w.Version, tc.want, err)
		}
	}

	// Below MinVersion is a protocol error and the connection closes.
	conn := dial()
	if err := WriteFrame(conn, THello, EncodeHello(Hello{Version: 0})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil || typ != TError {
		t.Fatalf("version reject: type 0x%02X err %v", typ, err)
	}
	e, err := DecodeError(payload)
	if err != nil || e.Code != CodeProto || !strings.Contains(e.Msg, "version") {
		t.Fatalf("version reject error: %+v err %v", e, err)
	}
	if _, _, err := ReadFrame(conn); err == nil {
		t.Fatal("connection stayed open after version reject")
	}
}

// TestServerReplClusterRouting checks the version-2 read-preference
// tail end to end against a cluster-backed server: SELECTs carrying
// PrefNearest land on a replica, writes always land on the primary, and
// version-1 frames (no tail) keep working and read from the primary.
func TestServerReplClusterRouting(t *testing.T) {
	cluster, err := mmdb.OpenCluster(mmdb.Options{MemoryPages: 64, MaxConcurrentQueries: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	emp, err := cluster.Primary().CreateRelation("emp", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "salary", Kind: mmdb.Int64},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := emp.Insert(mmdb.IntValue(int64(i+1)), mmdb.IntValue(int64(100*(i+1)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := emp.Flush(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cluster.WaitCaughtUp(ctx); err != nil {
		t.Fatal(err)
	}

	srv := &Server{Cluster: cluster, Name: "cluster test"}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, THello, EncodeHello(Hello{Version: Version, Class: byte(mmdb.Batch)})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil || typ != TWelcome {
		t.Fatalf("handshake: type 0x%02X err %v", typ, err)
	}
	if w, err := DecodeWelcome(payload); err != nil || w.Version != Version {
		t.Fatalf("WELCOME %+v err %v", w, err)
	}

	// runQueryV2 sends the v2 payload (read-preference tail included).
	runQueryV2 := func(q Query) (Result, []mmdb.Tuple, *ErrorFrame) {
		t.Helper()
		if err := WriteFrame(conn, TQuery, EncodeQueryV2(q)); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if typ == TError {
			e, err := DecodeError(payload)
			if err != nil {
				t.Fatal(err)
			}
			return Result{}, nil, &e
		}
		if typ != TResult {
			t.Fatalf("unexpected frame type 0x%02X", typ)
		}
		res, err := DecodeResult(payload)
		if err != nil {
			t.Fatal(err)
		}
		schema, err := res.Schema()
		if err != nil {
			t.Fatal(err)
		}
		var rows []mmdb.Tuple
		for {
			typ, payload, err := ReadFrame(conn)
			if err != nil {
				t.Fatal(err)
			}
			if typ == TDone {
				return res, rows, nil
			}
			if typ != TRows {
				t.Fatalf("unexpected frame type 0x%02X mid-response", typ)
			}
			batch, err := DecodeRows(payload, schema)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range batch {
				rows = append(rows, mmdb.Tuple(r))
			}
		}
	}

	// A nearest-replica SELECT lands on a replica.
	before := cluster.Metrics().ReplicaReads
	_, rows, ef := runQueryV2(Query{Class: ClassDefault, SQL: "SELECT id FROM emp", Pref: PrefNearest})
	if ef != nil || len(rows) != 8 {
		t.Fatalf("nearest SELECT: err=%+v rows=%d", ef, len(rows))
	}
	if got := cluster.Metrics().ReplicaReads; got <= before {
		t.Fatalf("nearest SELECT did not read a replica (replicaReads %d -> %d)", before, got)
	}

	// A write carrying the same preference still lands on the primary.
	res, _, ef := runQueryV2(Query{Class: ClassDefault,
		SQL: "INSERT INTO emp (id, salary) VALUES (9, 900)", Pref: PrefNearest})
	if ef != nil || res.Affected != 1 {
		t.Fatalf("routed INSERT: err=%+v affected=%d", ef, res.Affected)
	}
	if rel, err := cluster.Primary().Relation("emp"); err != nil || rel.NumTuples() != 9 {
		t.Fatalf("primary after INSERT: err=%v", err)
	}

	// A version-1 frame (no tail) still decodes and reads the primary.
	beforePrimary := cluster.Metrics().PrimaryReads
	if err := WriteFrame(conn, TQuery, EncodeQuery(Query{Class: ClassDefault, SQL: "SELECT id FROM emp"})); err != nil {
		t.Fatal(err)
	}
	for {
		typ, _, err := ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if typ == TError {
			t.Fatal("v1 QUERY failed on cluster server")
		}
		if typ == TDone {
			break
		}
	}
	if got := cluster.Metrics().PrimaryReads; got <= beforePrimary {
		t.Fatalf("v1 SELECT did not read the primary (primaryReads %d -> %d)", beforePrimary, got)
	}

	// An unknown preference byte is a protocol error.
	if err := WriteFrame(conn, TQuery, EncodeQueryV2(Query{Class: ClassDefault, SQL: "SELECT 1", Pref: 7})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = ReadFrame(conn)
	if err != nil || typ != TError {
		t.Fatalf("bad pref: type 0x%02X err %v", typ, err)
	}
	if e, err := DecodeError(payload); err != nil || e.Code != CodeProto || !strings.Contains(e.Msg, "preference") {
		t.Fatalf("bad pref error: %+v err %v", e, err)
	}
}
