package wire

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"mmdb"
)

// TestWelcomeRoleEpochRoundTrip: the version-3 WELCOME tail survives a
// round trip, and both pre-v3 layouts decode with RoleUnknown — the
// presence-decoded tail is what keeps old clients working.
func TestWelcomeRoleEpochRoundTrip(t *testing.T) {
	w := Welcome{Version: 3, Server: "node-a", Role: RoleReplica, Epoch: 7}
	got, err := DecodeWelcome(EncodeWelcomeV3(w))
	if err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Fatalf("v3 WELCOME round trip: %+v != %+v", got, w)
	}
	old, err := DecodeWelcome(EncodeWelcome(Welcome{Version: 2, Server: "node-a"}))
	if err != nil {
		t.Fatal(err)
	}
	if old.Role != RoleUnknown || old.Epoch != 0 {
		t.Fatalf("v2 WELCOME decoded role %d epoch %d, want unknown/0", old.Role, old.Epoch)
	}
}

// TestNotPrimaryRoundTrip: the NOT_PRIMARY payload codec.
func TestNotPrimaryRoundTrip(t *testing.T) {
	np := NotPrimary{Epoch: 9, Hint: "127.0.0.1:7420", Msg: "mmdb: not the primary"}
	got, err := DecodeNotPrimary(EncodeNotPrimary(np))
	if err != nil {
		t.Fatal(err)
	}
	if got != np {
		t.Fatalf("NOT_PRIMARY round trip: %+v != %+v", got, np)
	}
	if _, err := DecodeNotPrimary([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated NOT_PRIMARY decoded")
	}
}

// nodeHandshake dials a node server and completes HELLO/WELCOME at the
// requested version, returning the connection and the decoded WELCOME.
func nodeHandshake(t *testing.T, addr string, version byte) (net.Conn, Welcome) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := WriteFrame(conn, THello, EncodeHello(Hello{Version: version, Class: byte(mmdb.Interactive)})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil || typ != TWelcome {
		t.Fatalf("handshake: type 0x%02X err %v", typ, err)
	}
	w, err := DecodeWelcome(payload)
	if err != nil {
		t.Fatal(err)
	}
	return conn, w
}

// expectFrame sends one QUERY and returns the first response frame.
func expectFrame(t *testing.T, conn net.Conn, sql string, v3 bool) (byte, []byte) {
	t.Helper()
	q := Query{Class: ClassDefault, SQL: sql, Pref: PrefDefault}
	payload := EncodeQuery(q)
	if v3 {
		payload = EncodeQueryV2(q)
	}
	if err := WriteFrame(conn, TQuery, payload); err != nil {
		t.Fatal(err)
	}
	typ, resp, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	return typ, resp
}

// drainResponse consumes the remaining frames of a successful response.
func drainResponse(t *testing.T, conn net.Conn) {
	t.Helper()
	for {
		typ, _, err := ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if typ == TDone {
			return
		}
	}
}

// TestNodeServersNotPrimary runs one wire server per cluster node —
// "clients route, nodes don't" — and checks the whole v3 surface: role
// and epoch in WELCOME, NOT_PRIMARY with a dialable hint (translated
// through Peers) for writes against the replica, reads still served
// there, the pre-v3 ERROR fallback, and the hint flipping after a
// promotion demotes the old primary under its clients.
func TestNodeServersNotPrimary(t *testing.T) {
	cluster, err := mmdb.OpenCluster(mmdb.Options{MemoryPages: 64, MaxConcurrentQueries: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	if _, err := cluster.Primary().CreateRelation("kv", mmdb.MustSchema(
		mmdb.Field{Name: "k", Kind: mmdb.Int64}, mmdb.Field{Name: "v", Kind: mmdb.Int64})); err != nil {
		t.Fatal(err)
	}

	srvP := &Server{Cluster: cluster, Node: "p", Name: "node-p"}
	srvR := &Server{Cluster: cluster, Node: "r0", Name: "node-r0"}
	addrP, err := srvP.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrR, err := srvR.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := map[string]string{"p": addrP.String(), "r0": addrR.String()}
	srvP.Peers, srvR.Peers = peers, peers
	go srvP.Serve()
	go srvR.Serve()
	t.Cleanup(func() { srvP.Close(); srvR.Close() })

	connP, wp := nodeHandshake(t, addrP.String(), Version)
	if wp.Role != RolePrimary || wp.Epoch != 1 {
		t.Fatalf("primary WELCOME role %d epoch %d, want primary/1", wp.Role, wp.Epoch)
	}
	connR, wr := nodeHandshake(t, addrR.String(), Version)
	if wr.Role != RoleReplica || wr.Epoch != 1 {
		t.Fatalf("replica WELCOME role %d epoch %d, want replica/1", wr.Role, wr.Epoch)
	}

	// A write against the replica node: NOT_PRIMARY with the primary's
	// dialable address, connection stays open for reads.
	typ, payload := expectFrame(t, connR, "INSERT INTO kv VALUES (1, 1)", true)
	if typ != TNotPrimary {
		t.Fatalf("write on replica answered frame 0x%02X, want NOT_PRIMARY", typ)
	}
	np, err := DecodeNotPrimary(payload)
	if err != nil {
		t.Fatal(err)
	}
	if np.Epoch != 1 || np.Hint != addrP.String() {
		t.Fatalf("NOT_PRIMARY{Epoch: %d, Hint: %q}, want epoch 1 hint %s", np.Epoch, np.Hint, addrP)
	}
	if typ, _ := expectFrame(t, connR, "SELECT COUNT(*) FROM kv", true); typ != TResult {
		t.Fatalf("read on replica answered frame 0x%02X after NOT_PRIMARY", typ)
	}
	drainResponse(t, connR)

	// The write lands on the primary node.
	if typ, _ := expectFrame(t, connP, "INSERT INTO kv VALUES (1, 1)", true); typ != TResult {
		t.Fatalf("write on primary answered frame 0x%02X", typ)
	}
	drainResponse(t, connP)

	// A version-2 client gets the ERROR fallback, not an unknown frame.
	connR2, wr2 := nodeHandshake(t, addrR.String(), 2)
	if wr2.Role != RoleUnknown {
		t.Fatalf("v2 WELCOME carried role %d", wr2.Role)
	}
	typ, payload = expectFrame(t, connR2, "INSERT INTO kv VALUES (2, 2)", false)
	if typ != TError {
		t.Fatalf("v2 write on replica answered frame 0x%02X, want ERROR", typ)
	}
	if e, err := DecodeError(payload); err != nil || !strings.Contains(e.Msg, "primary") {
		t.Fatalf("v2 fallback error %+v err %v", e, err)
	}

	// Promote the replica: the old primary's node server now answers
	// NOT_PRIMARY pointing at the new primary, with the new epoch.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cluster.Promote(ctx, 0); err != nil {
		t.Fatal(err)
	}
	typ, payload = expectFrame(t, connP, "INSERT INTO kv VALUES (3, 3)", true)
	if typ != TNotPrimary {
		t.Fatalf("write on demoted primary answered frame 0x%02X, want NOT_PRIMARY", typ)
	}
	np, err = DecodeNotPrimary(payload)
	if err != nil {
		t.Fatal(err)
	}
	if np.Epoch != 2 || np.Hint != addrR.String() {
		t.Fatalf("post-promotion NOT_PRIMARY{Epoch: %d, Hint: %q}, want epoch 2 hint %s", np.Epoch, np.Hint, addrR)
	}
	if typ, _ := expectFrame(t, connR, "INSERT INTO kv VALUES (3, 3)", true); typ != TResult {
		t.Fatalf("write on new primary answered frame 0x%02X", typ)
	}
	drainResponse(t, connR)
	if srvR.Stats().NotPrimary.Load() == 0 || srvP.Stats().NotPrimary.Load() == 0 {
		t.Fatal("NOT_PRIMARY refusals were not counted")
	}
}

// TestIdleTimeoutReapsSilentConnection: PING keeps a quiet connection
// alive past the idle deadline, and true silence gets it closed in
// bounded time.
func TestIdleTimeoutReapsSilentConnection(t *testing.T) {
	db := mmdb.MustOpen(mmdb.Options{MemoryPages: 64, MaxConcurrentQueries: 2})
	srv := &Server{DB: db, Name: "idle", IdleTimeout: 80 * time.Millisecond}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })

	conn, _ := nodeHandshake(t, addr.String(), Version)
	// Heartbeats under the deadline keep the connection alive well past
	// several idle windows.
	for i := 0; i < 6; i++ {
		time.Sleep(40 * time.Millisecond)
		if err := WriteFrame(conn, TPing, nil); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
		if typ, _, err := ReadFrame(conn); err != nil || typ != TPong {
			t.Fatalf("pong %d: type 0x%02X err %v", i, typ, err)
		}
	}
	// Now go silent: the server must reap the connection, surfacing as a
	// read error here — well before this generous deadline.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := ReadFrame(conn); err == nil {
		t.Fatal("silent connection survived the idle timeout")
	}
}
