package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mmdb/internal/tuple"
)

// TestFrameRoundTrip checks the frame layer itself: length prefix, type
// byte, payload, and the MaxFrame / truncation guards.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frame")
	if err := WriteFrame(&buf, TQuery, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	// docs/WIRE.md §2: u32 BE length of (type + payload), type, payload.
	raw := buf.Bytes()
	if want := 4 + 1 + len(payload); len(raw) != want {
		t.Fatalf("frame is %d bytes, want %d", len(raw), want)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != TQuery || !bytes.Equal(got, payload) {
		t.Fatalf("round trip gave type 0x%02X payload %q", typ, got)
	}

	// Empty payload (PING/PONG) round-trips too.
	buf.Reset()
	if err := WriteFrame(&buf, TPing, nil); err != nil {
		t.Fatalf("WriteFrame(empty): %v", err)
	}
	typ, got, err = ReadFrame(&buf)
	if err != nil || typ != TPing || len(got) != 0 {
		t.Fatalf("empty round trip: type 0x%02X payload %v err %v", typ, got, err)
	}

	// Oversize frames are refused on the write side...
	if err := WriteFrame(&bytes.Buffer{}, TRows, make([]byte, MaxFrame)); err == nil {
		t.Fatal("WriteFrame accepted an oversize frame")
	}
	// ...and a hostile length prefix is refused on the read side.
	bad := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("ReadFrame accepted an out-of-range length")
	}
	// Truncated payloads surface an error, not a short read.
	buf.Reset()
	_ = WriteFrame(&buf, TQuery, payload)
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("ReadFrame accepted a truncated frame")
	}
}

// TestMessageRoundTrips covers every frame type docs/WIRE.md defines
// with an Encode/Decode pair: HELLO, WELCOME, QUERY, RESULT, ROWS,
// DONE, ERROR, OVERLOAD. (PING and PONG carry no payload and are
// exercised by TestFrameRoundTrip and the server test.)
func TestMessageRoundTrips(t *testing.T) {
	hello := Hello{Version: Version, Class: 1, MinPages: 32}
	if got, err := DecodeHello(EncodeHello(hello)); err != nil || got != hello {
		t.Fatalf("HELLO round trip: %+v, %v", got, err)
	}

	welcome := Welcome{Version: Version, Server: "mmdb test"}
	if got, err := DecodeWelcome(EncodeWelcome(welcome)); err != nil || got != welcome {
		t.Fatalf("WELCOME round trip: %+v, %v", got, err)
	}

	// A version-1 QUERY decodes with Pref = PrefDefault (no tail).
	query := Query{Class: ClassDefault, MinPages: 8, SQL: "SELECT id FROM emp WHERE salary > 41000", Pref: PrefDefault}
	if got, err := DecodeQuery(EncodeQuery(query)); err != nil || got != query {
		t.Fatalf("QUERY round trip: %+v, %v", got, err)
	}

	// The version-2 tail round-trips the read preference and LSN bound.
	query2 := Query{Class: ClassDefault, SQL: "SELECT 1", Pref: PrefBounded, MaxLag: 1 << 40}
	if got, err := DecodeQuery(EncodeQueryV2(query2)); err != nil || got != query2 {
		t.Fatalf("QUERY v2 round trip: %+v, %v", got, err)
	}

	result := Result{
		Affected: 0,
		Fields: []FieldDesc{
			{Name: "id", Kind: tuple.Int64, Size: 8},
			{Name: "name", Kind: tuple.String, Size: 16},
			{Name: "avg_salary", Kind: tuple.Float64, Size: 8},
		},
	}
	gotRes, err := DecodeResult(EncodeResult(result))
	if err != nil || !reflect.DeepEqual(gotRes, result) {
		t.Fatalf("RESULT round trip: %+v, %v", gotRes, err)
	}
	schema, err := gotRes.Schema()
	if err != nil {
		t.Fatalf("Result.Schema: %v", err)
	}
	if schema.NumFields() != 3 || schema.Width() != 8+16+8 {
		t.Fatalf("reconstructed schema: %d fields, width %d", schema.NumFields(), schema.Width())
	}

	// A statement RESULT has no fields and reconstructs a nil schema.
	stmt := Result{Affected: 42}
	gotStmt, err := DecodeResult(EncodeResult(stmt))
	if err != nil || gotStmt.Affected != 42 || len(gotStmt.Fields) != 0 {
		t.Fatalf("statement RESULT round trip: %+v, %v", gotStmt, err)
	}
	if s, err := gotStmt.Schema(); err != nil || s != nil {
		t.Fatalf("statement schema should be nil, got %v, %v", s, err)
	}

	// ROWS: raw fixed-width tuples against the reconstructed schema.
	rows := make([]tuple.Tuple, 3)
	for i := range rows {
		tt, err := schema.Encode(
			tuple.Value{Kind: tuple.Int64, I: int64(i + 1)},
			tuple.Value{Kind: tuple.String, S: strings.Repeat("x", i+1)},
			tuple.Value{Kind: tuple.Float64, F: float64(i) + 0.5},
		)
		if err != nil {
			t.Fatalf("encode row: %v", err)
		}
		rows[i] = tt
	}
	gotRows, err := DecodeRows(EncodeRows(rows), schema)
	if err != nil || !reflect.DeepEqual(gotRows, rows) {
		t.Fatalf("ROWS round trip: %v, %v", gotRows, err)
	}
	if _, err := DecodeRows(EncodeRows(rows), nil); err == nil {
		t.Fatal("DecodeRows accepted a nil schema")
	}

	done := Done{
		RowCount:  3,
		Counters:  [6]int64{10, 20, 30, 40, 50, 60},
		ElapsedNS: 123456,
		QueuedNS:  789,
	}
	if got, err := DecodeDone(EncodeDone(done)); err != nil || got != done {
		t.Fatalf("DONE round trip: %+v, %v", got, err)
	}

	ef := ErrorFrame{Code: CodeSemantic, Msg: "sql: unknown column (SQL.md §7.4) at byte 7: nope"}
	if got, err := DecodeError(EncodeError(ef)); err != nil || got != ef {
		t.Fatalf("ERROR round trip: %+v, %v", got, err)
	}

	ov := Overload{Class: 1, Depth: 7, Msg: "admission queue full"}
	if got, err := DecodeOverload(EncodeOverload(ov)); err != nil || got != ov {
		t.Fatalf("OVERLOAD round trip: %+v, %v", got, err)
	}
}

// TestDecodeRejectsMalformed checks the reader's sticky-error and
// trailing-byte guards on every decoder: truncations and garbage tails
// must fail loudly, never decode partially.
func TestDecodeRejectsMalformed(t *testing.T) {
	full := map[string][]byte{
		"HELLO":    EncodeHello(Hello{Version: 1, Class: 0, MinPages: 4}),
		"WELCOME":  EncodeWelcome(Welcome{Version: 1, Server: "srv"}),
		"QUERY":    EncodeQuery(Query{Class: 0, MinPages: 0, SQL: "SELECT 1"}),
		"RESULT":   EncodeResult(Result{Fields: []FieldDesc{{Name: "id", Kind: tuple.Int64, Size: 8}}}),
		"DONE":     EncodeDone(Done{RowCount: 1}),
		"ERROR":    EncodeError(ErrorFrame{Code: CodeExec, Msg: "boom"}),
		"OVERLOAD": EncodeOverload(Overload{Class: 1, Depth: 2, Msg: "shed"}),
	}
	decode := map[string]func([]byte) error{
		"HELLO":    func(p []byte) error { _, err := DecodeHello(p); return err },
		"WELCOME":  func(p []byte) error { _, err := DecodeWelcome(p); return err },
		"QUERY":    func(p []byte) error { _, err := DecodeQuery(p); return err },
		"RESULT":   func(p []byte) error { _, err := DecodeResult(p); return err },
		"DONE":     func(p []byte) error { _, err := DecodeDone(p); return err },
		"ERROR":    func(p []byte) error { _, err := DecodeError(p); return err },
		"OVERLOAD": func(p []byte) error { _, err := DecodeOverload(p); return err },
	}
	for name, payload := range full {
		dec := decode[name]
		// Well-formed payload decodes.
		if err := dec(payload); err != nil {
			t.Errorf("%s: full payload failed: %v", name, err)
		}
		// Every strict prefix is a truncation error.
		for cut := 0; cut < len(payload); cut++ {
			if err := dec(payload[:cut]); err == nil {
				t.Errorf("%s: accepted truncation to %d/%d bytes", name, cut, len(payload))
				break
			}
		}
		// Trailing garbage is rejected.
		if err := dec(append(append([]byte{}, payload...), 0xAA)); err == nil {
			t.Errorf("%s: accepted trailing garbage", name)
		}
	}
}
