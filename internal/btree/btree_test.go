package btree

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mmdb/internal/tuple"
)

// Small geometry keeps trees deep at small scale.
func smallConfig() Config {
	return Config{PageSize: 256, KeyWidth: 8, PointerWidth: 4, TupleWidth: 16}
}

func key(k int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(k)^(1<<63))
	return b[:]
}

func tup(k, v int64) tuple.Tuple {
	t := make(tuple.Tuple, 16)
	copy(t, key(k))
	binary.BigEndian.PutUint64(t[8:], uint64(v))
	return t
}

func TestGeometry(t *testing.T) {
	cfg := smallConfig()
	if cfg.Fanout() != 256/12 {
		t.Fatalf("fanout = %d", cfg.Fanout())
	}
	if cfg.LeafCapacity() != 16 {
		t.Fatalf("leaf capacity = %d", cfg.LeafCapacity())
	}
	if _, err := New(Config{PageSize: 10, KeyWidth: 8, TupleWidth: 16}); err == nil {
		t.Fatal("degenerate geometry accepted")
	}
}

func TestInsertSearch(t *testing.T) {
	tr := MustNew(smallConfig())
	const n = 2000
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(n)
	for _, k := range perm {
		tr.Insert(key(int64(k)), tup(int64(k), int64(k)*10))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.NumTuples() != n {
		t.Fatalf("tuples = %d", tr.NumTuples())
	}
	for i := 0; i < 200; i++ {
		k := int64(rng.Intn(n))
		got := tr.Search(key(k), nil)
		if len(got) != 1 || !bytes.Equal(got[0], tup(k, k*10)) {
			t.Fatalf("search(%d) = %v", k, got)
		}
	}
	if got := tr.Search(key(n+5), nil); got != nil {
		t.Fatal("found a missing key")
	}
}

func TestDuplicatesAcrossSplits(t *testing.T) {
	tr := MustNew(smallConfig())
	// Insert enough duplicates of a few keys that they straddle leaf
	// splits; searches must find every copy.
	counts := map[int64]int{3: 40, 7: 25, 9: 1}
	order := []int64{}
	for k, n := range counts {
		for i := 0; i < n; i++ {
			order = append(order, k)
		}
	}
	rand.New(rand.NewSource(2)).Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for i, k := range order {
		tr.Insert(key(k), tup(k, int64(i)))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, n := range counts {
		if got := len(tr.Search(key(k), nil)); got != n {
			t.Fatalf("key %d: found %d of %d duplicates", k, got, n)
		}
	}
	if removed := tr.Delete(key(3)); removed != 40 {
		t.Fatalf("delete removed %d of 40", removed)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Search(key(3), nil); got != nil {
		t.Fatal("deleted duplicates still found")
	}
	if got := len(tr.Search(key(7), nil)); got != 25 {
		t.Fatalf("unrelated key disturbed: %d", got)
	}
}

func TestAscendRange(t *testing.T) {
	tr := MustNew(smallConfig())
	for i := int64(0); i < 500; i += 2 {
		tr.Insert(key(i), tup(i, i))
	}
	var got []int64
	tr.AscendRange(key(101), nil, func(k []byte, _ tuple.Tuple) bool {
		got = append(got, int64(binary.BigEndian.Uint64(k)^(1<<63)))
		return len(got) < 5
	})
	want := []int64{102, 104, 106, 108, 110}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// Full walk is sorted and complete.
	count := 0
	last := int64(-1)
	tr.AscendRange(nil, nil, func(k []byte, _ tuple.Tuple) bool {
		v := int64(binary.BigEndian.Uint64(k) ^ (1 << 63))
		if v <= last {
			t.Fatalf("out of order: %d after %d", v, last)
		}
		last = v
		count++
		return true
	})
	if count != 250 {
		t.Fatalf("walked %d of 250", count)
	}
}

func TestPageAccessesMatchHeightPlusOne(t *testing.T) {
	// §2: a random B+-tree lookup touches height+1 pages (root..leaf).
	tr := MustNew(smallConfig())
	rng := rand.New(rand.NewSource(3))
	const n = 5000
	for _, k := range rng.Perm(n) {
		tr.Insert(key(int64(k)), tup(int64(k), 0))
	}
	visits := 0
	const lookups = 500
	for i := 0; i < lookups; i++ {
		tr.Search(key(int64(rng.Intn(n))), func(NodeID) { visits++ })
	}
	mean := float64(visits) / lookups
	// Unique keys: descent path length == tree height, occasionally +1 for
	// a leaf-chain peek at a separator boundary.
	if mean < float64(tr.Height()) || mean > float64(tr.Height())+1 {
		t.Fatalf("mean pages/lookup %.2f, height %d", mean, tr.Height())
	}
}

func TestComparisonsAreLogarithmic(t *testing.T) {
	tr := MustNew(Config{PageSize: 4096, KeyWidth: 8, PointerWidth: 4, TupleWidth: 100})
	rng := rand.New(rand.NewSource(4))
	const n = 50000
	for _, k := range rng.Perm(n) {
		tr.Insert(key(int64(k)), make(tuple.Tuple, 100))
	}
	tr.ResetComparisons()
	const lookups = 1000
	for i := 0; i < lookups; i++ {
		tr.Search(key(int64(rng.Intn(n))), nil)
	}
	perLookup := float64(tr.Comparisons()) / lookups
	// §2: C' ≈ log2(||R||) comparisons.
	if want := math.Log2(n); math.Abs(perLookup-want) > 6 {
		t.Fatalf("%.1f comparisons/lookup, model predicts ≈%.1f", perLookup, want)
	}
}

func TestBulkLoad(t *testing.T) {
	tr := MustNew(smallConfig())
	const n = 3000
	keys := make([][]byte, n)
	tups := make([]tuple.Tuple, n)
	for i := 0; i < n; i++ {
		keys[i] = key(int64(i))
		tups[i] = tup(int64(i), int64(i))
	}
	if err := tr.BulkLoad(keys, tups, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.NumTuples() != n {
		t.Fatalf("tuples = %d", tr.NumTuples())
	}
	// Yao fill: leaves ≈ n / (capacity * 0.69).
	wantLeaves := float64(n) / (float64(tr.Config().LeafCapacity()) * YaoFill)
	if got := float64(tr.NumLeaves()); math.Abs(got-wantLeaves) > wantLeaves*0.15 {
		t.Fatalf("leaves = %.0f, expected ≈%.0f at 69%% fill", got, wantLeaves)
	}
	for i := 0; i < 100; i++ {
		k := int64(rand.New(rand.NewSource(int64(i))).Intn(n))
		if got := tr.Search(key(k), nil); len(got) != 1 {
			t.Fatalf("bulk-loaded key %d: %d hits", k, len(got))
		}
	}
	// Unsorted input rejected.
	if err := tr.BulkLoad([][]byte{key(2), key(1)}, []tuple.Tuple{tup(2, 0), tup(1, 0)}, 0); err == nil {
		t.Fatal("unsorted bulk load accepted")
	}
}

func TestRandomInsertOccupancyNearYao(t *testing.T) {
	// [YAO78]: nodes under random insertion average ~69% occupancy. Allow
	// a generous band; the point is that the paper's fanout discount is
	// the right order.
	tr := MustNew(smallConfig())
	rng := rand.New(rand.NewSource(6))
	const n = 20000
	for _, k := range rng.Perm(n) {
		tr.Insert(key(int64(k)), tup(int64(k), 0))
	}
	occ := float64(tr.NumTuples()) / float64(tr.NumLeaves()*tr.Config().LeafCapacity())
	if occ < 0.60 || occ > 0.80 {
		t.Fatalf("leaf occupancy %.2f, expected ≈0.69", occ)
	}
}

func TestQuickMatchesSortedOracle(t *testing.T) {
	f := func(seed int64, nOps uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := MustNew(smallConfig())
		oracle := map[int64]int{}
		ops := int(nOps)%500 + 30
		for i := 0; i < ops; i++ {
			k := int64(rng.Intn(50))
			if rng.Intn(4) == 0 {
				removed := tr.Delete(key(k))
				if removed != oracle[k] {
					return false
				}
				delete(oracle, k)
			} else {
				tr.Insert(key(k), tup(k, int64(i)))
				oracle[k]++
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		total := 0
		for k, n := range oracle {
			if got := len(tr.Search(key(k), nil)); got != n {
				t.Logf("key %d: got %d want %d", k, len(tr.Search(key(k), nil)), n)
				return false
			}
			total += n
		}
		if tr.NumTuples() != total {
			return false
		}
		var walked []int64
		tr.AscendRange(nil, nil, func(k []byte, _ tuple.Tuple) bool {
			walked = append(walked, int64(binary.BigEndian.Uint64(k)^(1<<63)))
			return true
		})
		return sort.SliceIsSorted(walked, func(i, j int) bool { return walked[i] < walked[j] }) && len(walked) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
