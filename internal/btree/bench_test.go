package btree

import (
	"math/rand"
	"testing"

	"mmdb/internal/tuple"
)

func benchTree(n int) (*Tree, []int64) {
	tr := MustNew(Config{PageSize: 4096, KeyWidth: 8, TupleWidth: 100})
	rng := rand.New(rand.NewSource(1))
	keys := make([]int64, n)
	for i, k := range rng.Perm(n) {
		keys[i] = int64(k)
		tr.Insert(key(int64(k)), make(tuple.Tuple, 100))
	}
	return tr, keys
}

func BenchmarkInsert(b *testing.B) {
	tr := MustNew(Config{PageSize: 4096, KeyWidth: 8, TupleWidth: 100})
	t := make(tuple.Tuple, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(key(int64(i*2654435761)), t)
	}
}

func BenchmarkSearch(b *testing.B) {
	tr, keys := benchTree(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(key(keys[i%len(keys)]), nil)
	}
}

func BenchmarkAscend100(b *testing.B) {
	tr, keys := benchTree(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.AscendRange(key(keys[i%len(keys)]), nil, func([]byte, tuple.Tuple) bool {
			n++
			return n < 100
		})
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	const n = 100000
	keys := make([][]byte, n)
	tups := make([]tuple.Tuple, n)
	for i := 0; i < n; i++ {
		keys[i] = key(int64(i))
		tups[i] = make(tuple.Tuple, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := MustNew(Config{PageSize: 4096, KeyWidth: 8, TupleWidth: 100})
		if err := tr.BulkLoad(keys, tups, 0); err != nil {
			b.Fatal(err)
		}
	}
}
