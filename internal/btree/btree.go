// Package btree implements the page-structured B+-tree of §2 of the paper:
// the standard disk access method it compares the AVL tree against.
//
// Geometry follows the paper exactly: with page size P, key width K and
// pointer width B, an interior node holds up to P/(K+B) children and a
// leaf holds up to P/L tuples of width L. Nodes are kept as in-memory
// structures carrying page IDs so the Table 1 experiments can replay
// traversals through a buffer pool; Yao's observation that nodes average
// 69% full emerges from random insertion and is also available directly as
// a bulk-load fill factor.
package btree

import (
	"bytes"
	"fmt"

	"mmdb/internal/page"
	"mmdb/internal/tuple"
)

// NodeID identifies a tree page for buffer-pool simulation.
type NodeID int64

// VisitFunc observes a page inspection during a search or scan.
type VisitFunc func(NodeID)

// YaoFill is the average node occupancy of a B-tree under random
// insertions [YAO78], used as the default bulk-load fill factor.
const YaoFill = 0.69

// Config fixes the tree geometry.
type Config struct {
	PageSize     int // the paper's P (bytes)
	KeyWidth     int // the paper's K (bytes)
	PointerWidth int // the paper's B (bytes); 0 means 4
	TupleWidth   int // the paper's L (bytes)
}

func (c Config) withDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = page.DefaultSize
	}
	if c.PointerWidth == 0 {
		c.PointerWidth = 4
	}
	return c
}

// Fanout returns the maximum number of children of an interior node.
func (c Config) Fanout() int {
	return c.PageSize / (c.KeyWidth + c.PointerWidth)
}

// LeafCapacity returns the maximum number of tuples per leaf.
func (c Config) LeafCapacity() int {
	return c.PageSize / c.TupleWidth
}

func (c Config) validate() error {
	if c.KeyWidth <= 0 || c.TupleWidth <= 0 {
		return fmt.Errorf("btree: KeyWidth and TupleWidth must be positive: %+v", c)
	}
	if c.Fanout() < 3 {
		return fmt.Errorf("btree: fanout %d too small (page %d, key %d, pointer %d)",
			c.Fanout(), c.PageSize, c.KeyWidth, c.PointerWidth)
	}
	if c.LeafCapacity() < 1 {
		return fmt.Errorf("btree: tuple width %d exceeds page size %d", c.TupleWidth, c.PageSize)
	}
	return nil
}

type treeNode interface {
	nodeID() NodeID
}

type leaf struct {
	id   NodeID
	keys [][]byte
	tups []tuple.Tuple
	next *leaf
}

func (l *leaf) nodeID() NodeID { return l.id }

type interior struct {
	id       NodeID
	keys     [][]byte // keys[i] = smallest key reachable under children[i+1]
	children []treeNode
}

func (n *interior) nodeID() NodeID { return n.id }

// Tree is a B+-tree over fixed-width tuples keyed by an order-preserving
// byte string. Duplicate keys are allowed. Not safe for concurrent use.
type Tree struct {
	cfg       Config
	root      treeNode
	height    int // levels including the leaf level; 0 when empty
	tuples    int
	leaves    int
	interiors int
	nextPage  NodeID
	comps     int64
}

// New creates an empty tree.
func New(cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Tree{cfg: cfg}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the tree geometry.
func (t *Tree) Config() Config { return t.cfg }

// NumTuples returns the number of stored tuples.
func (t *Tree) NumTuples() int { return t.tuples }

// NumLeaves returns the number of leaf pages.
func (t *Tree) NumLeaves() int { return t.leaves }

// NumPages returns the total number of pages (leaves + interior), the
// paper's S'.
func (t *Tree) NumPages() int { return t.leaves + t.interiors }

// Height returns the number of levels, counting the leaf level.
func (t *Tree) Height() int { return t.height }

// Comparisons returns the number of key comparisons since construction or
// the last ResetComparisons.
func (t *Tree) Comparisons() int64 { return t.comps }

// ResetComparisons zeroes the comparison counter.
func (t *Tree) ResetComparisons() { t.comps = 0 }

func (t *Tree) newLeaf() *leaf {
	t.leaves++
	id := t.nextPage
	t.nextPage++
	return &leaf{id: id}
}

func (t *Tree) newInterior() *interior {
	t.interiors++
	id := t.nextPage
	t.nextPage++
	return &interior{id: id}
}

func (t *Tree) compare(a, b []byte) int {
	t.comps++
	return bytes.Compare(a, b)
}

// Insert adds tup under key.
func (t *Tree) Insert(key []byte, tup tuple.Tuple) {
	if len(key) != t.cfg.KeyWidth {
		panic(fmt.Sprintf("btree: key width %d, configured %d", len(key), t.cfg.KeyWidth))
	}
	if len(tup) != t.cfg.TupleWidth {
		panic(fmt.Sprintf("btree: tuple width %d, configured %d", len(tup), t.cfg.TupleWidth))
	}
	if t.root == nil {
		l := t.newLeaf()
		l.keys = [][]byte{append([]byte(nil), key...)}
		l.tups = []tuple.Tuple{tup}
		t.root = l
		t.height = 1
		t.tuples = 1
		return
	}
	split, sepKey := t.insert(t.root, key, tup)
	t.tuples++
	if split != nil {
		r := t.newInterior()
		r.keys = [][]byte{sepKey}
		r.children = []treeNode{t.root, split}
		t.root = r
		t.height++
	}
}

// insert descends to the leaf, inserting; on split it returns the new right
// sibling and the separator key (smallest key of the right sibling).
func (t *Tree) insert(n treeNode, key []byte, tup tuple.Tuple) (treeNode, []byte) {
	switch n := n.(type) {
	case *leaf:
		i := t.searchKeys(n.keys, key, false)
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = append([]byte(nil), key...)
		n.tups = append(n.tups, nil)
		copy(n.tups[i+1:], n.tups[i:])
		n.tups[i] = tup
		if len(n.keys) <= t.cfg.LeafCapacity() {
			return nil, nil
		}
		mid := len(n.keys) / 2
		right := t.newLeaf()
		right.keys = append(right.keys, n.keys[mid:]...)
		right.tups = append(right.tups, n.tups[mid:]...)
		n.keys = n.keys[:mid:mid]
		n.tups = n.tups[:mid:mid]
		right.next = n.next
		n.next = right
		return right, right.keys[0]
	case *interior:
		ci := t.childIndex(n, key)
		split, sepKey := t.insert(n.children[ci], key, tup)
		if split == nil {
			return nil, nil
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = sepKey
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = split
		if len(n.children) <= t.cfg.Fanout() {
			return nil, nil
		}
		mid := len(n.children) / 2
		right := t.newInterior()
		up := n.keys[mid-1]
		right.keys = append(right.keys, n.keys[mid:]...)
		right.children = append(right.children, n.children[mid:]...)
		n.keys = n.keys[: mid-1 : mid-1]
		n.children = n.children[:mid:mid]
		return right, up
	default:
		panic("btree: unknown node type")
	}
}

// searchKeys binary-searches keys for key. With lower=true it returns the
// first index i with keys[i] >= key; otherwise the first i with
// keys[i] > key. Comparisons are counted.
func (t *Tree) searchKeys(keys [][]byte, key []byte, lower bool) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		c := t.compare(keys[mid], key)
		if c < 0 || (!lower && c == 0) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns which child of n covers key. Keys equal to a separator
// descend left; searches compensate by scanning forward along the leaf
// chain, so duplicates that straddle a split are still found.
func (t *Tree) childIndex(n *interior, key []byte) int {
	return t.searchKeys(n.keys, key, true)
}

// Search returns all tuples stored under key. Each inspected page is
// reported to visit (which may be nil).
func (t *Tree) Search(key []byte, visit VisitFunc) []tuple.Tuple {
	if t.root == nil {
		return nil
	}
	n := t.root
	for {
		if visit != nil {
			visit(n.nodeID())
		}
		in, ok := n.(*interior)
		if !ok {
			break
		}
		n = in.children[t.childIndex(in, key)]
	}
	l := n.(*leaf)
	var out []tuple.Tuple
	i := t.searchKeys(l.keys, key, true)
	for {
		for ; i < len(l.keys); i++ {
			if t.compare(l.keys[i], key) != 0 {
				return out
			}
			out = append(out, l.tups[i])
		}
		if l.next == nil {
			return out
		}
		l = l.next
		if visit != nil {
			visit(l.id)
		}
		i = 0
	}
}

// AscendRange walks tuples with key >= start in key order, calling fn until
// it returns false. A nil start walks from the smallest key. Each touched
// page (descent path plus every leaf visited) is reported to visit.
func (t *Tree) AscendRange(start []byte, visit VisitFunc, fn func(key []byte, tup tuple.Tuple) bool) {
	if t.root == nil {
		return
	}
	n := t.root
	for {
		if visit != nil {
			visit(n.nodeID())
		}
		in, ok := n.(*interior)
		if !ok {
			break
		}
		if start == nil {
			n = in.children[0]
		} else {
			n = in.children[t.childIndex(in, start)]
		}
	}
	l := n.(*leaf)
	i := 0
	if start != nil {
		i = t.searchKeys(l.keys, start, true)
	}
	for {
		for ; i < len(l.keys); i++ {
			if !fn(l.keys[i], l.tups[i]) {
				return
			}
		}
		if l.next == nil {
			return
		}
		l = l.next
		if visit != nil {
			visit(l.id)
		}
		i = 0
	}
}

// Delete removes all tuples stored under key and reports how many were
// removed. Leaves are allowed to underflow (lazy deletion); structure and
// search correctness are preserved.
func (t *Tree) Delete(key []byte) int {
	if t.root == nil {
		return 0
	}
	n := t.root
	for {
		in, ok := n.(*interior)
		if !ok {
			break
		}
		n = in.children[t.childIndex(in, key)]
	}
	removed := 0
	for l := n.(*leaf); l != nil; l = l.next {
		i := t.searchKeys(l.keys, key, true)
		j := i
		for j < len(l.keys) && t.compare(l.keys[j], key) == 0 {
			j++
		}
		if j > i {
			removed += j - i
			l.keys = append(l.keys[:i], l.keys[j:]...)
			l.tups = append(l.tups[:i], l.tups[j:]...)
		}
		if i < len(l.keys) {
			break // a key greater than the target remains; duplicates cannot continue
		}
	}
	t.tuples -= removed
	return removed
}

// BulkLoad builds a tree from tuples already sorted by key, packing leaves
// and interior nodes to the given fill factor (0 means YaoFill). It
// replaces the tree contents.
func (t *Tree) BulkLoad(keys [][]byte, tups []tuple.Tuple, fill float64) error {
	if len(keys) != len(tups) {
		return fmt.Errorf("btree: %d keys but %d tuples", len(keys), len(tups))
	}
	if fill == 0 {
		fill = YaoFill
	}
	if fill <= 0 || fill > 1 {
		return fmt.Errorf("btree: fill factor %g out of (0,1]", fill)
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) > 0 {
			return fmt.Errorf("btree: bulk load input not sorted at %d", i)
		}
	}
	t.root, t.height, t.tuples, t.leaves, t.interiors, t.nextPage = nil, 0, 0, 0, 0, 0
	if len(keys) == 0 {
		return nil
	}
	perLeaf := int(float64(t.cfg.LeafCapacity())*fill + 0.5)
	if perLeaf < 1 {
		perLeaf = 1
	}
	var level []treeNode
	var seps [][]byte // smallest key under each node in level
	var prev *leaf
	for i := 0; i < len(keys); i += perLeaf {
		j := i + perLeaf
		if j > len(keys) {
			j = len(keys)
		}
		l := t.newLeaf()
		for k := i; k < j; k++ {
			l.keys = append(l.keys, append([]byte(nil), keys[k]...))
			l.tups = append(l.tups, tups[k])
		}
		if prev != nil {
			prev.next = l
		}
		prev = l
		level = append(level, l)
		seps = append(seps, l.keys[0])
	}
	t.tuples = len(keys)
	t.height = 1
	perNode := int(float64(t.cfg.Fanout())*fill + 0.5)
	if perNode < 2 {
		perNode = 2
	}
	for len(level) > 1 {
		var up []treeNode
		var upSeps [][]byte
		for i := 0; i < len(level); i += perNode {
			j := i + perNode
			if j > len(level) {
				j = len(level)
			}
			if j-i == 1 && len(up) > 0 {
				// Avoid a one-child node: fold into the previous sibling.
				last := up[len(up)-1].(*interior)
				last.keys = append(last.keys, seps[i])
				last.children = append(last.children, level[i])
				continue
			}
			n := t.newInterior()
			n.children = append(n.children, level[i:j]...)
			n.keys = append(n.keys, seps[i+1:j]...)
			up = append(up, n)
			upSeps = append(upSeps, seps[i])
		}
		level, seps = up, upSeps
		t.height++
	}
	t.root = level[0]
	return nil
}

// CheckInvariants verifies ordering, uniform leaf depth, separator bounds
// and the leaf chain. Intended for tests.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		if t.tuples != 0 || t.height != 0 {
			return fmt.Errorf("btree: empty root but tuples=%d height=%d", t.tuples, t.height)
		}
		return nil
	}
	depth := -1
	count := 0
	var lastLeaf *leaf
	var lastKey []byte
	var walk func(n treeNode, d int, lo, hi []byte) error
	walk = func(n treeNode, d int, lo, hi []byte) error {
		switch n := n.(type) {
		case *leaf:
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("btree: leaf at depth %d, expected %d", d, depth)
			}
			if len(n.keys) != len(n.tups) {
				return fmt.Errorf("btree: leaf with %d keys, %d tuples", len(n.keys), len(n.tups))
			}
			if len(n.keys) > t.cfg.LeafCapacity() {
				return fmt.Errorf("btree: overfull leaf (%d > %d)", len(n.keys), t.cfg.LeafCapacity())
			}
			for _, k := range n.keys {
				if lastKey != nil && bytes.Compare(lastKey, k) > 0 {
					return fmt.Errorf("btree: keys out of order: %x then %x", lastKey, k)
				}
				if lo != nil && bytes.Compare(k, lo) < 0 {
					return fmt.Errorf("btree: key %x below separator %x", k, lo)
				}
				if hi != nil && bytes.Compare(k, hi) > 0 {
					return fmt.Errorf("btree: key %x above separator %x", k, hi)
				}
				lastKey = k
				count++
			}
			if lastLeaf != nil && lastLeaf.next != n {
				return fmt.Errorf("btree: broken leaf chain")
			}
			lastLeaf = n
			return nil
		case *interior:
			if len(n.children) != len(n.keys)+1 {
				return fmt.Errorf("btree: interior with %d children, %d keys", len(n.children), len(n.keys))
			}
			if len(n.children) > t.cfg.Fanout() {
				return fmt.Errorf("btree: overfull interior (%d > %d)", len(n.children), t.cfg.Fanout())
			}
			for i, c := range n.children {
				clo, chi := lo, hi
				if i > 0 {
					clo = n.keys[i-1]
				}
				if i < len(n.keys) {
					chi = n.keys[i]
				}
				if err := walk(c, d+1, clo, chi); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("btree: unknown node type %T", n)
		}
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return err
	}
	if depth != t.height {
		return fmt.Errorf("btree: stored height %d, actual %d", t.height, depth)
	}
	if count != t.tuples {
		return fmt.Errorf("btree: stored tuples %d, reachable %d", t.tuples, count)
	}
	if lastLeaf != nil && lastLeaf.next != nil {
		return fmt.Errorf("btree: leaf chain extends past last leaf")
	}
	return nil
}
