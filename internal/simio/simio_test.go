package simio

import (
	"testing"

	"mmdb/internal/cost"
)

func newDisk() (*Disk, *cost.Clock) {
	clock := cost.NewClock(cost.DefaultParams())
	return NewDisk(clock, 256), clock
}

func TestCreateOpenRemove(t *testing.T) {
	d, _ := newDisk()
	s, err := d.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("a"); err == nil {
		t.Fatal("duplicate create accepted")
	}
	got, err := d.Open("a")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Open returns a fresh handle sharing the same page storage.
	if got.data != s.data || got.Name() != s.Name() {
		t.Fatalf("open returned a handle on different storage")
	}
	if _, err := d.Open("missing"); err == nil {
		t.Fatal("open of missing space succeeded")
	}
	d.MustCreate("b")
	if names := d.Spaces(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("spaces = %v", names)
	}
	d.Remove("a")
	if _, err := d.Open("a"); err == nil {
		t.Fatal("removed space still opens")
	}
}

func TestReadWriteRoundTripAndPadding(t *testing.T) {
	d, _ := newDisk()
	s := d.MustCreate("x")
	n, err := s.Append([]byte("hello"), Uncharged)
	if err != nil || n != 0 {
		t.Fatalf("append: %d %v", n, err)
	}
	data, err := s.Read(0, Uncharged)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 256 || string(data[:5]) != "hello" || data[5] != 0 {
		t.Fatalf("read back %q", data[:8])
	}
	// Overwrite with shorter data zero-pads the remainder.
	if err := s.Write(0, []byte("hi"), Uncharged); err != nil {
		t.Fatal(err)
	}
	data, _ = s.Read(0, Uncharged)
	if string(data[:2]) != "hi" || data[2] != 0 {
		t.Fatalf("overwrite produced %q", data[:8])
	}
	// Mutating the returned copy must not affect the page.
	data[0] = 'X'
	again, _ := s.Read(0, Uncharged)
	if again[0] != 'h' {
		t.Fatal("Read returned a shared buffer")
	}
}

func TestBoundsAndOversize(t *testing.T) {
	d, _ := newDisk()
	s := d.MustCreate("x")
	if _, err := s.Read(0, Uncharged); err == nil {
		t.Fatal("read of missing page succeeded")
	}
	if err := s.Write(3, nil, Uncharged); err == nil {
		t.Fatal("write of missing page succeeded")
	}
	if _, err := s.Append(make([]byte, 300), Uncharged); err == nil {
		t.Fatal("oversized append accepted")
	}
}

func TestAccessCharging(t *testing.T) {
	d, clock := newDisk()
	s := d.MustCreate("x")
	s.Append([]byte("a"), Seq)
	s.Append([]byte("b"), Rand)
	s.Read(0, Seq)
	s.Read(1, Uncharged)
	c := clock.Counters()
	if c.SeqIOs != 2 || c.RandIOs != 1 {
		t.Fatalf("counters = %+v", c)
	}
	p := clock.Params()
	want := 2*p.IOSeq + p.IORand
	if clock.Now() != want {
		t.Fatalf("virtual time %v, want %v", clock.Now(), want)
	}
}

func TestTruncate(t *testing.T) {
	d, _ := newDisk()
	s := d.MustCreate("x")
	s.Append([]byte("a"), Uncharged)
	s.Truncate()
	if s.NumPages() != 0 {
		t.Fatal("truncate left pages")
	}
}

func TestAccessString(t *testing.T) {
	if Seq.String() != "seq" || Rand.String() != "rand" || Uncharged.String() != "uncharged" {
		t.Fatal("Access.String broken")
	}
}
