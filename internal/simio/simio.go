// Package simio provides a simulated page-oriented disk.
//
// The disk stores page images in memory and charges every access to a
// cost.Clock as either a sequential or a random IO operation, following the
// IOseq/IOrand model of the paper (§3.2). Algorithms that the paper
// excludes from its cost accounting (the initial read of the base
// relations, the final write of the join result) use Uncharged access.
package simio

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mmdb/internal/cost"
)

// Access classifies a page operation for cost accounting.
type Access int

// Access kinds.
const (
	Seq       Access = iota // charged at IOseq
	Rand                    // charged at IOrand
	Uncharged               // not charged (costs common to all algorithms)
)

func (a Access) String() string {
	switch a {
	case Seq:
		return "seq"
	case Rand:
		return "rand"
	case Uncharged:
		return "uncharged"
	default:
		return fmt.Sprintf("Access(%d)", int(a))
	}
}

// Disk is a collection of named page spaces sharing one virtual clock.
// The disk (and each Space) is safe for concurrent use; parallel partition
// workers read and drop disjoint spaces, and the per-access cost charges
// go to the lock-free clock.
type Disk struct {
	mu       sync.Mutex
	clock    *cost.Clock
	pageSize int
	spaces   map[string]*Space

	// Fault injection: when failAfter reaches zero, the next charged IO
	// returns an error (tests drive operator error paths with this). The
	// armed flag keeps the common unarmed path free of the counter's
	// cache line.
	failAfter atomic.Int64
	failArmed atomic.Bool
}

// FailAfter arms fault injection: the n-th subsequent charged IO operation
// (1-based) fails with a synthetic device error. Uncharged accesses are
// exempt. Pass a negative n to disarm. Under parallel execution the
// failing operation is whichever worker reaches the budget first.
func (d *Disk) FailAfter(n int64) {
	d.failAfter.Store(n)
	d.failArmed.Store(n >= 0)
}

// tick consumes one charged IO and reports whether it should fail.
func (d *Disk) tick() bool {
	if !d.failArmed.Load() {
		return false
	}
	return d.failAfter.Add(-1) < 0
}

// ErrInjected marks an injected device failure.
var ErrInjected = fmt.Errorf("simio: injected device failure")

// NewDisk creates a disk with the given page size charging to clock.
func NewDisk(clock *cost.Clock, pageSize int) *Disk {
	if pageSize <= 0 {
		panic("simio: page size must be positive")
	}
	return &Disk{
		clock:    clock,
		pageSize: pageSize,
		spaces:   make(map[string]*Space),
	}
}

// PageSize returns the disk's page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// Clock returns the clock the disk charges to.
func (d *Disk) Clock() *cost.Clock { return d.clock }

// Create makes a new empty space. It fails if the name is taken.
func (d *Disk) Create(name string) (*Space, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.spaces[name]; ok {
		return nil, fmt.Errorf("simio: space %q already exists", name)
	}
	s := &Space{name: name, disk: d}
	d.spaces[name] = s
	return s, nil
}

// MustCreate is Create that panics on error.
func (d *Disk) MustCreate(name string) *Space {
	s, err := d.Create(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Open returns an existing space.
func (d *Disk) Open(name string) (*Space, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.spaces[name]
	if !ok {
		return nil, fmt.Errorf("simio: space %q does not exist", name)
	}
	return s, nil
}

// Remove deletes a space and releases its pages.
func (d *Disk) Remove(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.spaces, name)
}

// Spaces returns the names of all spaces in sorted order.
func (d *Disk) Spaces() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.spaces))
	for n := range d.spaces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Space is a file of fixed-size pages.
type Space struct {
	mu    sync.Mutex
	name  string
	disk  *Disk
	pages [][]byte
}

// Name returns the space name.
func (s *Space) Name() string { return s.name }

// NumPages returns the number of pages in the space.
func (s *Space) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// Append writes data as a new page at the end of the space and returns its
// page number. The data is copied; short data is zero padded.
func (s *Space) Append(data []byte, a Access) (int, error) {
	if len(data) > s.disk.pageSize {
		return 0, fmt.Errorf("simio: page data %d bytes exceeds page size %d", len(data), s.disk.pageSize)
	}
	if err := s.charge(a); err != nil {
		return 0, err
	}
	p := make([]byte, s.disk.pageSize)
	copy(p, data)
	s.mu.Lock()
	s.pages = append(s.pages, p)
	n := len(s.pages) - 1
	s.mu.Unlock()
	return n, nil
}

// Write overwrites page n in place.
func (s *Space) Write(n int, data []byte, a Access) error {
	if len(data) > s.disk.pageSize {
		return fmt.Errorf("simio: page data %d bytes exceeds page size %d", len(data), s.disk.pageSize)
	}
	if err := s.charge(a); err != nil {
		return err
	}
	s.mu.Lock()
	if n < 0 || n >= len(s.pages) {
		s.mu.Unlock()
		return fmt.Errorf("simio: write to page %d of %q (have %d pages)", n, s.name, len(s.pages))
	}
	p := s.pages[n]
	copy(p, data)
	for i := len(data); i < len(p); i++ {
		p[i] = 0
	}
	s.mu.Unlock()
	return nil
}

// Read returns a copy of page n.
func (s *Space) Read(n int, a Access) ([]byte, error) {
	if err := s.charge(a); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if n < 0 || n >= len(s.pages) {
		s.mu.Unlock()
		return nil, fmt.Errorf("simio: read of page %d of %q (have %d pages)", n, s.name, len(s.pages))
	}
	out := append([]byte(nil), s.pages[n]...)
	s.mu.Unlock()
	return out, nil
}

// Truncate drops all pages, leaving an empty space.
func (s *Space) Truncate() {
	s.mu.Lock()
	s.pages = nil
	s.mu.Unlock()
}

func (s *Space) charge(a Access) error {
	switch a {
	case Seq, Rand:
		if s.disk.tick() {
			return fmt.Errorf("simio: %s IO on %q: %w", a, s.name, ErrInjected)
		}
		if a == Seq {
			s.disk.clock.SeqIOs(1)
		} else {
			s.disk.clock.RandIOs(1)
		}
	case Uncharged:
	default:
		panic(fmt.Sprintf("simio: invalid access kind %d", int(a)))
	}
	return nil
}
