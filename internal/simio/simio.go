// Package simio provides a simulated page-oriented disk.
//
// The disk stores page images in memory and charges every access to a
// cost.Clock as either a sequential or a random IO operation, following the
// IOseq/IOrand model of the paper (§3.2). Algorithms that the paper
// excludes from its cost accounting (the initial read of the base
// relations, the final write of the join result) use Uncharged access.
package simio

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mmdb/internal/cost"
)

// Access classifies a page operation for cost accounting.
type Access int

// Access kinds.
const (
	Seq       Access = iota // charged at IOseq
	Rand                    // charged at IOrand
	Uncharged               // not charged (costs common to all algorithms)
)

func (a Access) String() string {
	switch a {
	case Seq:
		return "seq"
	case Rand:
		return "rand"
	case Uncharged:
		return "uncharged"
	default:
		return fmt.Sprintf("Access(%d)", int(a))
	}
}

// Disk is a collection of named page spaces sharing one virtual clock.
// The disk (and each Space) is safe for concurrent use; parallel partition
// workers read and drop disjoint spaces, and the per-access cost charges
// go to the lock-free clock.
//
// A Disk value is a *view* onto shared page storage: View returns a second
// handle on the same spaces that charges a different clock. The session
// layer gives every admitted query its own view + clock, which is what
// keeps per-query counters bit-identical under concurrency — each query's
// charges land on its private clock and are merged into the global one at
// session close.
type Disk struct {
	store *diskStore
	clock *cost.Clock
}

// diskStore is the storage shared by every view of one disk: the space
// registry and the device-level fault-injection state.
type diskStore struct {
	mu       sync.Mutex
	pageSize int
	spaces   map[string]*spaceData

	// injector, when non-nil, is consulted on every charged IO. The
	// atomic pointer keeps the common unarmed path free of locks.
	injector atomic.Pointer[injectorRef]
}

// injectorRef boxes an Injector so the interface value can live behind an
// atomic pointer.
type injectorRef struct{ inj Injector }

// Outcome is an injector's verdict for one charged IO operation.
type Outcome struct {
	// Err, when non-nil, fails the access; the space wraps it with
	// context so errors.Is still reaches the injector's sentinel.
	Err error
	// Stall charges that many extra IO operations of the same kind
	// before the access proceeds — a latency inflation, not a failure.
	Stall int64
}

// Injector decides the fate of every charged IO operation on a disk.
// Uncharged accesses are exempt. Implementations must be safe for
// concurrent use: parallel partition workers issue IO from many
// goroutines. The canonical implementation with seeded transient/
// permanent/stall schedules lives in internal/fault; this package keeps
// only the consultation hook to avoid an import cycle.
type Injector interface {
	ChargedIO(space string, a Access) Outcome
}

// SetInjector installs inj as the disk's fault injector, consulted on
// every charged IO of every space. Pass nil to disarm. The injector is
// device state, shared by all views of the disk.
func (d *Disk) SetInjector(inj Injector) {
	if inj == nil {
		d.store.injector.Store(nil)
		return
	}
	d.store.injector.Store(&injectorRef{inj: inj})
}

// FailAfter arms fault injection: the n-th subsequent charged IO operation
// (1-based) fails with a synthetic device error. Uncharged accesses are
// exempt. Pass a negative n to disarm. Under parallel execution the
// failing operation is whichever worker reaches the budget first.
//
// FailAfter is a compatibility shim over SetInjector (one mechanism, not
// two): it installs a counter-based injector, replacing any injector
// currently armed.
func (d *Disk) FailAfter(n int64) {
	if n < 0 {
		d.SetInjector(nil)
		return
	}
	fa := &failAfterInjector{}
	fa.remaining.Store(n)
	d.SetInjector(fa)
}

// failAfterInjector fails every charged IO after the first n.
type failAfterInjector struct{ remaining atomic.Int64 }

func (f *failAfterInjector) ChargedIO(string, Access) Outcome {
	if f.remaining.Add(-1) < 0 {
		return Outcome{Err: ErrInjected}
	}
	return Outcome{}
}

// ErrInjected marks an injected device failure.
var ErrInjected = errors.New("simio: injected device failure")

// NewDisk creates a disk with the given page size charging to clock.
func NewDisk(clock *cost.Clock, pageSize int) *Disk {
	if pageSize <= 0 {
		panic("simio: page size must be positive")
	}
	return &Disk{
		clock: clock,
		store: &diskStore{
			pageSize: pageSize,
			spaces:   make(map[string]*spaceData),
		},
	}
}

// View returns a handle on the same page storage that charges all IO to
// clock instead of the disk's own clock. Spaces created or opened through
// the view live in the shared registry (names are global), but their
// charged accesses land on the view's clock.
func (d *Disk) View(clock *cost.Clock) *Disk {
	return &Disk{store: d.store, clock: clock}
}

// PageSize returns the disk's page size in bytes.
func (d *Disk) PageSize() int { return d.store.pageSize }

// Clock returns the clock the disk charges to.
func (d *Disk) Clock() *cost.Clock { return d.clock }

// Create makes a new empty space. It fails if the name is taken.
func (d *Disk) Create(name string) (*Space, error) {
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	if _, ok := d.store.spaces[name]; ok {
		return nil, fmt.Errorf("simio: space %q already exists", name)
	}
	data := &spaceData{}
	d.store.spaces[name] = data
	return &Space{name: name, disk: d, data: data}, nil
}

// MustCreate is Create that panics on error.
func (d *Disk) MustCreate(name string) *Space {
	s, err := d.Create(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Open returns an existing space. The returned handle charges IO through
// d's clock, so opening one space through two views yields handles that
// share pages but charge different clocks.
func (d *Disk) Open(name string) (*Space, error) {
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	data, ok := d.store.spaces[name]
	if !ok {
		return nil, fmt.Errorf("simio: space %q does not exist", name)
	}
	return &Space{name: name, disk: d, data: data}, nil
}

// Remove deletes a space and releases its pages.
func (d *Disk) Remove(name string) {
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	delete(d.store.spaces, name)
}

// Spaces returns the names of all spaces in sorted order.
func (d *Disk) Spaces() []string {
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	names := make([]string, 0, len(d.store.spaces))
	for n := range d.store.spaces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// spaceData is the page storage shared by all handles on one space.
type spaceData struct {
	mu    sync.Mutex
	pages [][]byte
}

// Space is a file of fixed-size pages. A Space handle is bound to the disk
// view it was created or opened through; its charged accesses go to that
// view's clock while the page data itself is shared with every other
// handle on the same name.
type Space struct {
	name string
	disk *Disk
	data *spaceData
}

// Name returns the space name.
func (s *Space) Name() string { return s.name }

// NumPages returns the number of pages in the space.
func (s *Space) NumPages() int {
	s.data.mu.Lock()
	defer s.data.mu.Unlock()
	return len(s.data.pages)
}

// Append writes data as a new page at the end of the space and returns its
// page number. The data is copied; short data is zero padded.
func (s *Space) Append(data []byte, a Access) (int, error) {
	if len(data) > s.disk.store.pageSize {
		return 0, fmt.Errorf("simio: page data %d bytes exceeds page size %d", len(data), s.disk.store.pageSize)
	}
	if err := s.charge(a); err != nil {
		return 0, err
	}
	p := make([]byte, s.disk.store.pageSize)
	copy(p, data)
	s.data.mu.Lock()
	s.data.pages = append(s.data.pages, p)
	n := len(s.data.pages) - 1
	s.data.mu.Unlock()
	return n, nil
}

// Write overwrites page n in place.
func (s *Space) Write(n int, data []byte, a Access) error {
	if len(data) > s.disk.store.pageSize {
		return fmt.Errorf("simio: page data %d bytes exceeds page size %d", len(data), s.disk.store.pageSize)
	}
	if err := s.charge(a); err != nil {
		return err
	}
	s.data.mu.Lock()
	if n < 0 || n >= len(s.data.pages) {
		s.data.mu.Unlock()
		return fmt.Errorf("simio: write to page %d of %q (have %d pages)", n, s.name, len(s.data.pages))
	}
	p := s.data.pages[n]
	copy(p, data)
	for i := len(data); i < len(p); i++ {
		p[i] = 0
	}
	s.data.mu.Unlock()
	return nil
}

// Read returns a copy of page n.
func (s *Space) Read(n int, a Access) ([]byte, error) {
	if err := s.charge(a); err != nil {
		return nil, err
	}
	s.data.mu.Lock()
	if n < 0 || n >= len(s.data.pages) {
		s.data.mu.Unlock()
		return nil, fmt.Errorf("simio: read of page %d of %q (have %d pages)", n, s.name, len(s.data.pages))
	}
	out := append([]byte(nil), s.data.pages[n]...)
	s.data.mu.Unlock()
	return out, nil
}

// Truncate drops all pages, leaving an empty space.
func (s *Space) Truncate() {
	s.data.mu.Lock()
	s.data.pages = nil
	s.data.mu.Unlock()
}

func (s *Space) charge(a Access) error {
	switch a {
	case Seq, Rand:
		if ref := s.disk.store.injector.Load(); ref != nil {
			out := ref.inj.ChargedIO(s.name, a)
			if out.Stall > 0 {
				if a == Seq {
					s.disk.clock.SeqIOs(out.Stall)
				} else {
					s.disk.clock.RandIOs(out.Stall)
				}
			}
			if out.Err != nil {
				return fmt.Errorf("simio: %s IO on %q: %w", a, s.name, out.Err)
			}
		}
		if a == Seq {
			s.disk.clock.SeqIOs(1)
		} else {
			s.disk.clock.RandIOs(1)
		}
	case Uncharged:
	default:
		panic(fmt.Sprintf("simio: invalid access kind %d", int(a)))
	}
	return nil
}
