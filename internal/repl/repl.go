// Package repl implements LSN-shipping replication over the simulated
// recovery world: a primary-side Shipper streams the committed, durable
// prefix of a wal.Log to replica appliers, which fold it into their own
// stores with the page-partitioned parallel replay machinery and track
// the LSN horizon they are caught up to.
//
// The contract is the determinism oracle from the roadmap: a replica
// whose applied horizon is n holds a store byte-identical to the
// primary's committed prefix at n (ReferencePrefix). Everything here is
// built to keep that checkable — the stream is the log's own CRC-framed
// pages, apply is strict LSN order, and the virtual-cost counters of the
// apply path are bit-identical at every parallelism width.
package repl

import (
	"errors"
	"fmt"
	"time"

	"mmdb/internal/cost"
	"mmdb/internal/event"
	"mmdb/internal/fault"
	"mmdb/internal/recovery"
	"mmdb/internal/simio"
	"mmdb/internal/store"
	"mmdb/internal/wal"
)

// Config parameterizes a Shipper.
type Config struct {
	Sim *event.Sim
	Log *wal.Log

	// PageSize is the ship-frame size in bytes (0 = the log's page size).
	PageSize int
	// ShipDelay is the virtual latency per shipped frame (0 = 500µs).
	ShipDelay time.Duration
	// PollEvery is the retry/poll period while a replica lags and no
	// durability event is pending (0 = 5ms). Polling only re-arms while
	// there is unshipped data, so an idle simulator stays idle.
	PollEvery time.Duration

	// Parallelism is each replica's apply width (0 = serial).
	Parallelism int
	// Params is the cost model (zero value = cost.DefaultParams).
	Params cost.Params

	// Injector, when set, is consulted once per shipment round per
	// replica under the IO space "repl/ship/<name>": a transient error
	// skips the round (the replica lags and the round is retried), a
	// permanent error breaks the link for good, and a stall outcome
	// delays the delivery by the stall's extra frame-times.
	Injector simio.Injector
}

// ReplicaStats counts one replica's stream activity.
type ReplicaStats struct {
	Deliveries int64 // shipment batches delivered
	Frames     int64 // ship frames delivered
	Records    int64 // records delivered
	Transients int64 // shipment rounds skipped by transient faults
	Stalls     int64 // shipment rounds delayed by stall faults
}

// Replica is the receiving side of one ship stream: a cursor position on
// the primary's log, a relay space the frames land in, and an
// incremental applier building the store.
type Replica struct {
	name    string
	shipper *Shipper
	cursor  *wal.Cursor
	applier *recovery.Applier

	// The relay disk models the replica's local log device: delivered
	// frames are appended (uncharged: the network delivered them), then
	// read back and decoded through a per-delivery clock and disk view,
	// exactly like recovery's segment scan.
	relayClock *cost.Clock
	relayDisk  *simio.Disk
	relaySpace *simio.Space
	nextRead   int

	lastDelivery time.Duration
	broken       bool
	stats        ReplicaStats
	lagSamples   []int64 // durable-horizon LSN lag observed at each delivery
}

// Shipper streams a log's durable prefix to a set of replicas. All
// methods must be called from the simulator's event goroutine (or while
// the simulator is quiescent).
type Shipper struct {
	cfg      Config
	pageSize int
	replicas []*Replica
	armed    bool // a pump event is scheduled
}

// NewShipper creates a shipper over the primary's log and subscribes it
// to durable-horizon advances. Add replicas before the primary starts
// writing: each replica's cursor starts at LSN 0 and acts as a
// replication slot, so log truncation never outruns an attached replica.
func NewShipper(cfg Config) (*Shipper, error) {
	if cfg.Sim == nil || cfg.Log == nil {
		return nil, fmt.Errorf("repl: need Sim and Log")
	}
	if cfg.ShipDelay == 0 {
		cfg.ShipDelay = 500 * time.Microsecond
	}
	if cfg.PollEvery == 0 {
		cfg.PollEvery = 5 * time.Millisecond
	}
	if cfg.Params == (cost.Params{}) {
		cfg.Params = cost.DefaultParams()
	}
	s := &Shipper{cfg: cfg, pageSize: cfg.PageSize}
	if s.pageSize == 0 {
		s.pageSize = cfg.Log.Config().PageSize
	}
	cfg.Log.SubscribeDurable(s.schedulePump)
	return s, nil
}

// AddReplica attaches a replica applying into st (a zeroed store with
// the primary's geometry).
func (s *Shipper) AddReplica(name string, st *store.Store) *Replica {
	clk := cost.NewClock(s.cfg.Params)
	disk := simio.NewDisk(clk, s.pageSize)
	r := &Replica{
		name:       name,
		shipper:    s,
		cursor:     s.cfg.Log.NewCursor(0),
		applier:    recovery.NewApplier(st, s.cfg.Parallelism, s.cfg.Params),
		relayClock: clk,
		relayDisk:  disk,
		relaySpace: disk.MustCreate("relay/" + name),
	}
	s.replicas = append(s.replicas, r)
	return r
}

// Replicas returns the attached replicas.
func (s *Shipper) Replicas() []*Replica { return s.replicas }

// schedulePump coalesces pump requests into one scheduled event.
func (s *Shipper) schedulePump() {
	if s.armed {
		return
	}
	s.armed = true
	s.cfg.Sim.After(0, s.pumpEvent)
}

func (s *Shipper) pumpEvent() {
	s.armed = false
	if s.Pump() && !s.armed {
		// Data is still unshipped (transient fault, or new appends since
		// the cursor read) and no durability event is pending to retry
		// it: poll. The poll disarms itself as soon as nothing lags, so
		// the simulator can go idle.
		s.armed = true
		s.cfg.Sim.After(s.cfg.PollEvery, s.pumpEvent)
	}
}

// Pump runs one shipment round for every live replica and reports
// whether any of them still lags the durable horizon afterwards.
func (s *Shipper) Pump() bool {
	lagging := false
	for _, r := range s.replicas {
		if s.ship(r) {
			lagging = true
		}
	}
	return lagging
}

// ship runs one shipment round to r; reports whether r still lags.
func (s *Shipper) ship(r *Replica) bool {
	if r.broken {
		return false
	}
	durable := s.cfg.Log.DurableLSN()
	if r.cursor.Pos() >= durable {
		return false
	}
	var stall int64
	if inj := s.cfg.Injector; inj != nil {
		out := inj.ChargedIO("repl/ship/"+r.name, simio.Seq)
		if out.Err != nil {
			if errors.Is(out.Err, fault.ErrPermanent) {
				r.breakLink()
				return false
			}
			r.stats.Transients++
			return true // skip this round; retry on the next pump
		}
		if out.Stall > 0 {
			stall = out.Stall
			r.stats.Stalls++
		}
	}
	now := s.cfg.Sim.Now()
	recs := r.cursor.Next(now, 0)
	if len(recs) == 0 {
		return false
	}
	frames, err := wal.PackPages(recs, s.pageSize)
	if err != nil {
		// A record can always fit a log page of its own log's size; this
		// is a programming error, not a runtime condition.
		panic(fmt.Sprintf("repl: pack: %v", err))
	}
	delay := s.cfg.ShipDelay * time.Duration(int64(len(frames))+stall)
	at := now + delay
	if at < r.lastDelivery {
		at = r.lastDelivery // deliveries are FIFO per link
	}
	r.lastDelivery = at
	s.cfg.Sim.At(at, func() { r.deliver(frames) })
	return r.cursor.Pos() < s.cfg.Log.DurableLSN()
}

// breakLink marks the replica permanently disconnected and releases its
// replication slot so it no longer floors log truncation.
func (r *Replica) breakLink() {
	r.broken = true
	r.cursor.Close()
}

// deliver lands a shipment on the replica: frames are appended to the
// relay space, read back through a per-delivery clock + disk view with
// the recovery scan idiom (first page a seek, the rest sequential),
// CRC-decoded, and folded into the applier.
func (r *Replica) deliver(frames [][]byte) {
	if r.broken {
		return
	}
	for _, img := range frames {
		if _, err := r.relaySpace.Append(img, simio.Uncharged); err != nil {
			panic(fmt.Sprintf("repl: relay append: %v", err))
		}
	}
	clk := cost.NewClock(r.shipper.cfg.Params)
	view, err := r.relayDisk.View(clk).Open(r.relaySpace.Name())
	if err != nil {
		panic(fmt.Sprintf("repl: relay open: %v", err))
	}
	var recs []wal.Record
	for p := r.nextRead; p < view.NumPages(); p++ {
		access := simio.Seq
		if p == r.nextRead {
			access = simio.Rand
		}
		img, err := view.Read(p, access)
		if err != nil {
			panic(fmt.Sprintf("repl: relay read: %v", err))
		}
		page, intact := wal.DecodePageTail(img)
		if !intact {
			// Frames are whole log pages; a torn frame means the link
			// corrupted data in flight. Treat it as fatal for the link.
			r.breakLink()
			return
		}
		recs = append(recs, page...)
	}
	r.nextRead = view.NumPages()
	r.relayClock.Charge(clk.Counters())
	if err := r.applier.Ingest(recs); err != nil {
		panic(fmt.Sprintf("repl: %s: %v", r.name, err))
	}
	r.stats.Deliveries++
	r.stats.Frames += int64(len(frames))
	r.stats.Records += int64(len(recs))
	lag := int64(r.shipper.cfg.Log.DurableLSN()) - int64(r.applier.AppliedLSN())
	if lag < 0 {
		lag = 0
	}
	r.lagSamples = append(r.lagSamples, lag)
}

// CatchUp pumps until every live replica has applied the full durable
// prefix (or only broken replicas remain), running the simulator to
// drain in-flight deliveries between rounds. Call it after the primary
// has quiesced. Rounds are bounded so a pathological injector (every
// round transient forever) cannot hang the caller; it returns false if
// the bound was hit with replicas still lagging.
func (s *Shipper) CatchUp() bool {
	const maxRounds = 10000
	for i := 0; i < maxRounds; i++ {
		lagging := s.Pump()
		s.cfg.Sim.Run()
		if !lagging && s.caughtUp() {
			return true
		}
	}
	return s.caughtUp()
}

func (s *Shipper) caughtUp() bool {
	durable := s.cfg.Log.DurableLSN()
	for _, r := range s.replicas {
		if r.broken {
			continue
		}
		if r.applier.ReceivedLSN() < durable {
			return false
		}
	}
	return true
}

// Name returns the replica's name.
func (r *Replica) Name() string { return r.name }

// Store returns the store the replica is building.
func (r *Replica) Store() *store.Store { return r.applier.Store() }

// AppliedLSN returns the replica's apply frontier: its store equals the
// primary's committed prefix at this LSN.
func (r *Replica) AppliedLSN() wal.LSN { return r.applier.AppliedLSN() }

// ReceivedLSN returns the highest LSN delivered to the replica.
func (r *Replica) ReceivedLSN() wal.LSN { return r.applier.ReceivedLSN() }

// Broken reports whether the link was permanently severed.
func (r *Replica) Broken() bool { return r.broken }

// Stats returns the replica's stream counters.
func (r *Replica) Stats() ReplicaStats { return r.stats }

// LagSamples returns the durable-horizon LSN lag observed at each
// delivery (for staleness percentiles).
func (r *Replica) LagSamples() []int64 { return r.lagSamples }

// ApplyCounters returns the replica's apply-path virtual-cost counters —
// the width-invariant quantity of the determinism oracle.
func (r *Replica) ApplyCounters() cost.Counters { return r.applier.Counters() }

// RelayCounters returns the relay-scan virtual-cost counters.
func (r *Replica) RelayCounters() cost.Counters { return r.relayClock.Counters() }

// Applied returns the number of updates folded into the store.
func (r *Replica) Applied() int { return r.applier.Redone() }

// Snapshot clones the replica's store together with its apply frontier,
// for deferred byte-identity checks against ReferencePrefix.
func (r *Replica) Snapshot() (*store.Store, wal.LSN) {
	return r.applier.Store().Clone(), r.applier.AppliedLSN()
}

// ReferencePrefix builds the primary's committed prefix at n from the
// full record stream: a zeroed store with the given geometry, with every
// Update at or below n applied in LSN order. (Aborted transactions
// contribute their compensating updates the same way, so the net effect
// matches the primary's own store evolution exactly.) This is the oracle
// a replica with AppliedLSN() == n must be byte-identical to.
func ReferencePrefix(recs []wal.Record, n wal.LSN, numRecords, recSize, recordsPerPage int) (*store.Store, error) {
	st, err := store.New(numRecords, recSize, recordsPerPage)
	if err != nil {
		return nil, err
	}
	var last wal.LSN
	for _, r := range recs {
		if r.LSN < last {
			return nil, fmt.Errorf("repl: reference stream not LSN-ordered at %d", r.LSN)
		}
		last = r.LSN
		if r.LSN > n || r.Type != wal.Update {
			continue
		}
		if err := st.Apply(r.Rec, r.New); err != nil {
			return nil, err
		}
	}
	return st, nil
}
