package repl

import (
	"fmt"
	"testing"
	"time"

	"mmdb/internal/cost"
	"mmdb/internal/event"
	"mmdb/internal/fault"
	"mmdb/internal/store"
	"mmdb/internal/txn"
	"mmdb/internal/wal"
)

// replEngine builds a small seeded debit/credit primary on a segmented
// stable-memory log with truncation active — truncation matters here:
// the cursor's replication slot must keep every un-shipped record alive.
func replEngine(t *testing.T, seed int64) (*event.Sim, *txn.Engine) {
	t.Helper()
	sim := &event.Sim{}
	e, err := txn.New(sim, txn.Config{
		Accounts:       512,
		Terminals:      8,
		UpdatesPerTxn:  3,
		RecordsPerPage: 64,
		AbortEvery:     7,
		Seed:           seed,
		TruncateLog:    true,
		TruncateEvery:  8,
		Log: wal.Config{
			Policy:       wal.StableMemory,
			Devices:      []*wal.Device{wal.NewDevice("log0", 10*time.Millisecond)},
			PageSize:     4096,
			SegmentPages: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim, e
}

func zeroStoreLike(t *testing.T, st *store.Store) *store.Store {
	t.Helper()
	z, err := store.New(st.NumRecords(), st.RecordSize(), st.RecordsPerPage())
	if err != nil {
		t.Fatal(err)
	}
	return z
}

// checkReplica verifies the determinism oracle for one replica: its
// store is byte-identical to the primary's committed prefix at its
// applied LSN (and, when fully caught up after quiesce, to the primary's
// live store).
func checkReplica(t *testing.T, e *txn.Engine, recs []wal.Record, st *store.Store, at wal.LSN, label string) {
	t.Helper()
	prim := e.Store()
	ref, err := ReferencePrefix(recs, at, prim.NumRecords(), prim.RecordSize(), prim.RecordsPerPage())
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if !st.Equal(ref) {
		t.Fatalf("%s: replica at LSN %d diverged from the primary's committed prefix", label, at)
	}
}

// TestReplReplicaMatchesPrimaryAcrossWidths runs the same primary with
// replicas applying at widths 1–8: a mid-run snapshot and the final
// state must both be byte-identical to the committed prefix at their
// applied LSNs, the final state identical to the primary's live store,
// and the apply counters bit-identical across widths.
func TestReplReplicaMatchesPrimaryAcrossWidths(t *testing.T) {
	type snap struct {
		st *store.Store
		at wal.LSN
	}
	var baseline []cost.Counters
	for _, width := range []int{1, 2, 4, 8} {
		sim, e := replEngine(t, 11)
		sh, err := NewShipper(Config{Sim: sim, Log: e.Log(), Parallelism: width})
		if err != nil {
			t.Fatal(err)
		}
		var reps []*Replica
		for i := 0; i < 2; i++ {
			reps = append(reps, sh.AddReplica(fmt.Sprintf("r%d", i), zeroStoreLike(t, e.Store())))
		}
		var snaps []snap
		sim.At(300*time.Millisecond, func() {
			for _, r := range reps {
				st, at := r.Snapshot()
				snaps = append(snaps, snap{st, at})
			}
		})
		e.Run(600 * time.Millisecond)
		if !sh.CatchUp() {
			t.Fatalf("width %d: replicas failed to catch up", width)
		}
		recs, _ := e.Log().DurableRecords(sim.Now())
		if len(snaps) != 2 {
			t.Fatalf("width %d: snapshot hook did not fire", width)
		}
		for i, s := range snaps {
			if s.at == 0 {
				t.Fatalf("width %d: replica %d had applied nothing by mid-run", width, i)
			}
			checkReplica(t, e, recs, s.st, s.at, fmt.Sprintf("width %d replica %d mid-run", width, i))
		}
		for i, r := range reps {
			label := fmt.Sprintf("width %d replica %d final", width, i)
			if r.AppliedLSN() != e.Log().DurableLSN() {
				t.Fatalf("%s: applied %d != durable %d", label, r.AppliedLSN(), e.Log().DurableLSN())
			}
			checkReplica(t, e, recs, r.Store(), r.AppliedLSN(), label)
			if !r.Store().Equal(e.Store()) {
				t.Fatalf("%s: caught-up replica differs from the primary's live store", label)
			}
			if len(baseline) <= i {
				baseline = append(baseline, r.ApplyCounters())
			} else if r.ApplyCounters() != baseline[i] {
				t.Fatalf("%s: apply counters drifted across widths: %+v != %+v", label, r.ApplyCounters(), baseline[i])
			}
		}
	}
}

// TestReplConvergesUnderStallsAndTransients injects stalls on one link
// and transient drops on the other; both replicas must still converge
// byte-identically, with the faults visible in the stream stats.
func TestReplConvergesUnderStallsAndTransients(t *testing.T) {
	sim, e := replEngine(t, 23)
	inj := fault.NewInjector(5).
		StallEvery("repl/ship/r0", 3, 8).
		TransientEvery("repl/ship/r1", 4)
	sh, err := NewShipper(Config{Sim: sim, Log: e.Log(), Parallelism: 4, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	r0 := sh.AddReplica("r0", zeroStoreLike(t, e.Store()))
	r1 := sh.AddReplica("r1", zeroStoreLike(t, e.Store()))
	e.Run(600 * time.Millisecond)
	if !sh.CatchUp() {
		t.Fatal("replicas failed to catch up under faults")
	}
	recs, _ := e.Log().DurableRecords(sim.Now())
	checkReplica(t, e, recs, r0.Store(), r0.AppliedLSN(), "stalled replica")
	checkReplica(t, e, recs, r1.Store(), r1.AppliedLSN(), "flaky replica")
	if !r0.Store().Equal(e.Store()) || !r1.Store().Equal(e.Store()) {
		t.Fatal("faulted replicas did not converge to the primary store")
	}
	if r0.Stats().Stalls == 0 {
		t.Fatal("stall rule never fired on r0")
	}
	if r1.Stats().Transients == 0 {
		t.Fatal("transient rule never fired on r1")
	}
}

// TestReplPermanentFaultBreaksOneLink severs one link permanently; the
// broken replica stops (frozen at a consistent prefix) while the healthy
// one still converges, and the broken link releases its replication slot
// so truncation may proceed.
func TestReplPermanentFaultBreaksOneLink(t *testing.T) {
	sim, e := replEngine(t, 31)
	inj := fault.NewInjector(9).PermanentAfter("repl/ship/r0", 5)
	sh, err := NewShipper(Config{Sim: sim, Log: e.Log(), Parallelism: 2, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	r0 := sh.AddReplica("r0", zeroStoreLike(t, e.Store()))
	r1 := sh.AddReplica("r1", zeroStoreLike(t, e.Store()))
	e.Run(600 * time.Millisecond)
	if !sh.CatchUp() {
		t.Fatal("healthy replica failed to catch up")
	}
	if !r0.Broken() {
		t.Fatal("permanent fault did not break the r0 link")
	}
	recs, _ := e.Log().DurableRecords(sim.Now())
	// Even severed, the frozen prefix must be consistent.
	checkReplica(t, e, recs, r0.Store(), r0.AppliedLSN(), "broken replica prefix")
	if r0.AppliedLSN() >= e.Log().DurableLSN() {
		t.Fatal("broken replica unexpectedly saw the whole log")
	}
	checkReplica(t, e, recs, r1.Store(), r1.AppliedLSN(), "surviving replica")
	if !r1.Store().Equal(e.Store()) {
		t.Fatal("surviving replica did not converge")
	}
}

// TestReplLagSampling: deliveries record the LSN lag behind the durable
// horizon for staleness percentiles.
func TestReplLagSampling(t *testing.T) {
	sim, e := replEngine(t, 41)
	sh, err := NewShipper(Config{Sim: sim, Log: e.Log(), ShipDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r := sh.AddReplica("r0", zeroStoreLike(t, e.Store()))
	e.Run(300 * time.Millisecond)
	sh.CatchUp()
	if len(r.LagSamples()) == 0 {
		t.Fatal("no lag samples recorded")
	}
	if r.Stats().Deliveries == 0 || r.Stats().Records == 0 {
		t.Fatalf("empty stream stats: %+v", r.Stats())
	}
	// The relay scan charges IO like recovery's segment scan.
	if c := r.RelayCounters(); c == (cost.Counters{}) {
		t.Fatal("relay scan charged nothing")
	}
}
