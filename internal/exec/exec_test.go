package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1},
		{1, 1},
		{7, 7},
		{-1, runtime.GOMAXPROCS(0)},
		{-42, runtime.GOMAXPROCS(0)},
	}
	for _, tc := range cases {
		if got := Workers(tc.in); got != tc.want {
			t.Errorf("Workers(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestSerialPoolRunsInOrder(t *testing.T) {
	var order []int
	err := NewPool(1).ForEach(context.Background(), 10, func(_ context.Context, i int) error {
		order = append(order, i) // no lock: single worker runs inline
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial pool out of order: %v", order)
		}
	}
}

func TestParallelPoolRunsEveryTaskOnce(t *testing.T) {
	const n = 200
	var ran [n]atomic.Int64
	err := NewPool(8).ForEach(context.Background(), n, func(_ context.Context, i int) error {
		ran[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times", i, got)
		}
	}
}

func TestFirstErrorPropagatesAndCancels(t *testing.T) {
	boom := fmt.Errorf("boom")
	var started atomic.Int64
	err := NewPool(4).ForEach(context.Background(), 100, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 3 {
			return boom
		}
		<-ctx.Done() // park until the failure cancels us
		return nil
	})
	if err != boom {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if s := started.Load(); s > 100 {
		t.Fatalf("tasks started %d > n", s)
	}
}

func TestSerialPoolStopsAtFirstError(t *testing.T) {
	boom := fmt.Errorf("boom")
	var ran int
	err := NewPool(1).ForEach(context.Background(), 10, func(_ context.Context, i int) error {
		ran++
		if i == 2 {
			return boom
		}
		return nil
	})
	if err != boom || ran != 3 {
		t.Fatalf("err=%v ran=%d, want boom after 3 tasks", err, ran)
	}
}

func TestCanceledContextShortCircuits(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := NewPool(4).ForEach(ctx, 50, func(_ context.Context, _ int) error {
		ran.Add(1)
		return nil
	})
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestGatherRunsAllTasks(t *testing.T) {
	var mu sync.Mutex
	got := map[string]bool{}
	mark := func(name string) func(context.Context) error {
		return func(context.Context) error {
			mu.Lock()
			got[name] = true
			mu.Unlock()
			return nil
		}
	}
	if err := NewPool(2).Gather(context.Background(), mark("r"), mark("s")); err != nil {
		t.Fatal(err)
	}
	if !got["r"] || !got["s"] {
		t.Fatalf("tasks missed: %v", got)
	}
}

func TestNilAndZeroPoolAreSerial(t *testing.T) {
	var zero Pool
	if zero.Workers() != 1 {
		t.Fatal("zero pool not serial")
	}
	var nilPool *Pool
	if nilPool.Workers() != 1 {
		t.Fatal("nil pool not serial")
	}
	if err := nilPool.ForEach(context.Background(), 3, func(_ context.Context, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyForEach(t *testing.T) {
	if err := NewPool(4).ForEach(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
}
