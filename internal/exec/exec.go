// Package exec provides the shared worker-pool execution layer used by the
// parallel operators: a bounded pool, fan-out/fan-in over an index space,
// context cancellation, and first-error propagation.
//
// The pool is deliberately small. The operators hand it embarrassingly
// parallel per-partition work — the GRACE and hybrid hash buckets of §3.6
// and §3.7 are independent by construction — and every piece of shared
// state (the virtual clock, the simulated disk, result counters) is either
// already safe for concurrent use or merged by the caller after the
// fan-in. A pool with one worker executes inline, in index order, with no
// goroutines at all, which is what makes Parallelism=1 runs behave exactly
// like the original serial engine.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a Parallelism knob to a worker count: n > 0 means n
// workers, 0 means serial (one worker), and n < 0 means one worker per
// available CPU (GOMAXPROCS).
func Workers(n int) int {
	switch {
	case n > 0:
		return n
	case n < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// Pool is a bounded fan-out/fan-in executor. The zero Pool (and a nil
// Pool) is serial; use NewPool to set a width. Pools hold no state between
// calls and may be reused and shared.
type Pool struct {
	workers int
}

// NewPool returns a pool running at most Workers(n) tasks concurrently.
func NewPool(n int) *Pool { return &Pool{workers: Workers(n)} }

// Workers returns the pool's concurrency bound, always at least 1.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// ForEach runs fn(ctx, i) for every i in [0, n), using up to Workers()
// goroutines. The first error cancels the context passed to tasks that
// have not started yet, and ForEach returns that error after every started
// task has finished (fan-in: no task outlives the call). With one worker,
// or n <= 1, the tasks run inline in index order — no goroutines — so a
// serial pool reproduces the pre-pool code path exactly.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Gather runs heterogeneous tasks concurrently under the pool's bound and
// waits for all of them, returning the first error. The operators use it
// to overlap independent phases, e.g. partitioning R and S at the same
// time.
func (p *Pool) Gather(ctx context.Context, tasks ...func(ctx context.Context) error) error {
	return p.ForEach(ctx, len(tasks), func(ctx context.Context, i int) error {
		return tasks[i](ctx)
	})
}
