package session

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"mmdb/internal/lock"
	"mmdb/internal/wal"
)

// LockTable makes the §5.2 lock manager usable from concurrent goroutines.
// The underlying lock.Manager is single-threaded by design (the recovery
// simulator drives it from its event loop); this façade serializes all
// mutations behind one mutex and converts the manager's callback-style
// grants into blocking waits with context cancellation.
//
// Sessions take Shared intents on every relation a query reads; loads and
// DDL take Exclusive intents. Because it is the same lock machinery, a
// grant still carries the pre-committed dependency list of §5.2 — a query
// admitted after a pre-committed writer released its lock learns which
// transactions its answer depends on.
type LockTable struct {
	mu  sync.Mutex
	m   *lock.Manager
	ids atomic.Uint64 // session/DDL transaction ids, disjoint per table

	// exclusiveGuard, when set, vets every Exclusive acquisition before
	// it is enqueued — the read-only admission hook for replica
	// databases: reads (Shared intents) pass untouched, writes are
	// refused at the lock layer unless the guard allows the resource
	// (the replication applier, or a session-private temporary).
	exclusiveGuard func(res uint64) error

	// Exclusive in-flight accounting for QuiesceExclusive: requests
	// queued but not yet granted, grants currently held per txn, and the
	// waiters to wake when both drain to zero. A promotion fences new
	// writes with the guard, then quiesces — every writer that slipped
	// past the fence is either queued (it will be granted later) or
	// holding, so this count is exactly the in-flight write set.
	xPending int
	xHeld    map[wal.TxnID]int
	xWaiters []chan struct{}
}

// NewLockTable returns a façade over a fresh lock manager.
func NewLockTable() *LockTable {
	return &LockTable{m: lock.NewManager(), xHeld: make(map[wal.TxnID]int)}
}

// SetExclusiveGuard installs (or clears, with nil) the Exclusive-mode
// admission guard. The guard runs under the table mutex and must not
// block or re-enter the table.
func (t *LockTable) SetExclusiveGuard(fn func(res uint64) error) {
	t.mu.Lock()
	t.exclusiveGuard = fn
	t.mu.Unlock()
}

// NextID allocates a fresh transaction id for a session or a one-shot DDL
// operation.
func (t *LockTable) NextID() wal.TxnID {
	return wal.TxnID(t.ids.Add(1))
}

// Acquire takes the lock on res in the given mode for txn, blocking FIFO
// behind incompatible holders. It returns the pre-committed transactions
// the grant depends on. If ctx ends first, the queued request (and every
// lock txn holds) is released and the context error returned — a canceled
// session aborts wholesale, it does not keep partial lock sets.
func (t *LockTable) Acquire(ctx context.Context, txn wal.TxnID, res uint64, mode lock.Mode) ([]wal.TxnID, error) {
	ch := make(chan []wal.TxnID, 1)
	exclusive := mode == lock.Exclusive
	t.mu.Lock()
	if exclusive && t.exclusiveGuard != nil {
		if err := t.exclusiveGuard(res); err != nil {
			t.mu.Unlock()
			return nil, err
		}
	}
	if exclusive {
		t.xPending++
	}
	granted := t.m.Acquire(txn, res, mode, func(deps []wal.TxnID) {
		// Grant callbacks always run under t.mu (synchronously here, or
		// from a Release under the mutex), so the accounting is safe.
		if exclusive {
			t.xPending--
			t.xHeld[txn]++
		}
		ch <- deps
	})
	t.mu.Unlock()
	if granted {
		return <-ch, nil
	}
	select {
	case deps := <-ch:
		return deps, nil
	case <-ctx.Done():
		t.mu.Lock()
		select {
		case deps := <-ch:
			// Granted concurrently with cancellation: keep the grant;
			// the caller decides whether to proceed or Release.
			t.mu.Unlock()
			return deps, nil
		default:
		}
		if exclusive {
			// The queued request dies ungranted; its callback never runs.
			t.xPending--
		}
		t.releaseLocked(txn)
		t.mu.Unlock()
		return nil, ctx.Err()
	}
}

// releaseLocked drops txn's locks and queued requests and updates the
// exclusive accounting, waking quiesce waiters when the last exclusive
// in-flight drains. Callers hold t.mu.
func (t *LockTable) releaseLocked(txn wal.TxnID) {
	t.m.ReleaseAll(txn)
	delete(t.xHeld, txn)
	t.wakeQuiesceLocked()
}

// wakeQuiesceLocked signals QuiesceExclusive waiters once no exclusive
// work is queued or held. Callers hold t.mu.
func (t *LockTable) wakeQuiesceLocked() {
	if t.xPending != 0 || len(t.xHeld) != 0 {
		return
	}
	for _, ch := range t.xWaiters {
		close(ch)
	}
	t.xWaiters = nil
}

// QuiesceExclusive blocks until no exclusive lock is held or queued (or
// ctx ends). Combined with an exclusiveGuard that refuses new exclusive
// intents, this drains every in-flight writer — the promotion barrier:
// after it returns, all writes that will ever be acknowledged by this
// database have run their mutation and shipped their op.
func (t *LockTable) QuiesceExclusive(ctx context.Context) error {
	for {
		t.mu.Lock()
		if t.xPending == 0 && len(t.xHeld) == 0 {
			t.mu.Unlock()
			return nil
		}
		ch := make(chan struct{})
		t.xWaiters = append(t.xWaiters, ch)
		t.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// ExclusiveInFlight reports the queued and held exclusive counts (for
// tests and introspection).
func (t *LockTable) ExclusiveInFlight() (pending int, held int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.xPending, len(t.xHeld)
}

// AcquireAll takes the locks on every resource in ascending id order (the
// canonical order that keeps multi-relation queries deadlock-free) and
// returns the union of pre-commit dependencies, deduplicated and sorted.
func (t *LockTable) AcquireAll(ctx context.Context, txn wal.TxnID, resources []uint64, mode lock.Mode) ([]wal.TxnID, error) {
	rs := append([]uint64(nil), resources...)
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	depSet := make(map[wal.TxnID]struct{})
	for i, res := range rs {
		if i > 0 && res == rs[i-1] {
			continue
		}
		deps, err := t.Acquire(ctx, txn, res, mode)
		if err != nil {
			return nil, err
		}
		for _, d := range deps {
			depSet[d] = struct{}{}
		}
	}
	out := make([]wal.TxnID, 0, len(depSet))
	for d := range depSet {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Release drops every lock and queued request of txn (the query-completion
// and abort path).
func (t *LockTable) Release(txn wal.TxnID) {
	t.mu.Lock()
	t.releaseLocked(txn)
	t.mu.Unlock()
}

// PreCommit moves txn's holds to the pre-committed state, granting
// eligible waiters with a dependency on txn (the §5.2 group-commit path).
// Pre-committed holds no longer block waiters, so for quiesce purposes
// the txn's exclusives are done.
func (t *LockTable) PreCommit(txn wal.TxnID) {
	t.mu.Lock()
	t.m.PreCommit(txn)
	delete(t.xHeld, txn)
	t.wakeQuiesceLocked()
	t.mu.Unlock()
}

// Finish removes a durably committed (or fully aborted) txn from all
// pre-committed lists.
func (t *LockTable) Finish(txn wal.TxnID) {
	t.mu.Lock()
	t.m.Finish(txn)
	t.mu.Unlock()
}

// Holders reports the current holders of res (for tests and
// introspection).
func (t *LockTable) Holders(res uint64) []wal.TxnID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m.Holders(res)
}

// Waiting reports the queued transactions on res in FIFO order.
func (t *LockTable) Waiting(res uint64) []wal.TxnID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m.Waiting(res)
}

// CheckInvariants verifies the underlying lock table's consistency.
func (t *LockTable) CheckInvariants() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m.CheckInvariants()
}
