package session

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"mmdb/internal/lock"
	"mmdb/internal/wal"
)

// LockTable makes the §5.2 lock manager usable from concurrent goroutines.
// The underlying lock.Manager is single-threaded by design (the recovery
// simulator drives it from its event loop); this façade serializes all
// mutations behind one mutex and converts the manager's callback-style
// grants into blocking waits with context cancellation.
//
// Sessions take Shared intents on every relation a query reads; loads and
// DDL take Exclusive intents. Because it is the same lock machinery, a
// grant still carries the pre-committed dependency list of §5.2 — a query
// admitted after a pre-committed writer released its lock learns which
// transactions its answer depends on.
type LockTable struct {
	mu  sync.Mutex
	m   *lock.Manager
	ids atomic.Uint64 // session/DDL transaction ids, disjoint per table

	// exclusiveGuard, when set, vets every Exclusive acquisition before
	// it is enqueued — the read-only admission hook for replica
	// databases: reads (Shared intents) pass untouched, writes are
	// refused at the lock layer unless the guard allows the resource
	// (the replication applier, or a session-private temporary).
	exclusiveGuard func(res uint64) error
}

// NewLockTable returns a façade over a fresh lock manager.
func NewLockTable() *LockTable {
	return &LockTable{m: lock.NewManager()}
}

// SetExclusiveGuard installs (or clears, with nil) the Exclusive-mode
// admission guard. The guard runs under the table mutex and must not
// block or re-enter the table.
func (t *LockTable) SetExclusiveGuard(fn func(res uint64) error) {
	t.mu.Lock()
	t.exclusiveGuard = fn
	t.mu.Unlock()
}

// NextID allocates a fresh transaction id for a session or a one-shot DDL
// operation.
func (t *LockTable) NextID() wal.TxnID {
	return wal.TxnID(t.ids.Add(1))
}

// Acquire takes the lock on res in the given mode for txn, blocking FIFO
// behind incompatible holders. It returns the pre-committed transactions
// the grant depends on. If ctx ends first, the queued request (and every
// lock txn holds) is released and the context error returned — a canceled
// session aborts wholesale, it does not keep partial lock sets.
func (t *LockTable) Acquire(ctx context.Context, txn wal.TxnID, res uint64, mode lock.Mode) ([]wal.TxnID, error) {
	ch := make(chan []wal.TxnID, 1)
	t.mu.Lock()
	if mode == lock.Exclusive && t.exclusiveGuard != nil {
		if err := t.exclusiveGuard(res); err != nil {
			t.mu.Unlock()
			return nil, err
		}
	}
	granted := t.m.Acquire(txn, res, mode, func(deps []wal.TxnID) {
		ch <- deps
	})
	t.mu.Unlock()
	if granted {
		return <-ch, nil
	}
	select {
	case deps := <-ch:
		return deps, nil
	case <-ctx.Done():
		t.mu.Lock()
		select {
		case deps := <-ch:
			// Granted concurrently with cancellation: keep the grant;
			// the caller decides whether to proceed or Release.
			t.mu.Unlock()
			return deps, nil
		default:
		}
		t.m.ReleaseAll(txn)
		t.mu.Unlock()
		return nil, ctx.Err()
	}
}

// AcquireAll takes the locks on every resource in ascending id order (the
// canonical order that keeps multi-relation queries deadlock-free) and
// returns the union of pre-commit dependencies, deduplicated and sorted.
func (t *LockTable) AcquireAll(ctx context.Context, txn wal.TxnID, resources []uint64, mode lock.Mode) ([]wal.TxnID, error) {
	rs := append([]uint64(nil), resources...)
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	depSet := make(map[wal.TxnID]struct{})
	for i, res := range rs {
		if i > 0 && res == rs[i-1] {
			continue
		}
		deps, err := t.Acquire(ctx, txn, res, mode)
		if err != nil {
			return nil, err
		}
		for _, d := range deps {
			depSet[d] = struct{}{}
		}
	}
	out := make([]wal.TxnID, 0, len(depSet))
	for d := range depSet {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Release drops every lock and queued request of txn (the query-completion
// and abort path).
func (t *LockTable) Release(txn wal.TxnID) {
	t.mu.Lock()
	t.m.ReleaseAll(txn)
	t.mu.Unlock()
}

// PreCommit moves txn's holds to the pre-committed state, granting
// eligible waiters with a dependency on txn (the §5.2 group-commit path).
func (t *LockTable) PreCommit(txn wal.TxnID) {
	t.mu.Lock()
	t.m.PreCommit(txn)
	t.mu.Unlock()
}

// Finish removes a durably committed (or fully aborted) txn from all
// pre-committed lists.
func (t *LockTable) Finish(txn wal.TxnID) {
	t.mu.Lock()
	t.m.Finish(txn)
	t.mu.Unlock()
}

// Holders reports the current holders of res (for tests and
// introspection).
func (t *LockTable) Holders(res uint64) []wal.TxnID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m.Holders(res)
}

// Waiting reports the queued transactions on res in FIFO order.
func (t *LockTable) Waiting(res uint64) []wal.TxnID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m.Waiting(res)
}

// CheckInvariants verifies the underlying lock table's consistency.
func (t *LockTable) CheckInvariants() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m.CheckInvariants()
}
