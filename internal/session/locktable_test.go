package session

import (
	"context"
	"errors"
	"sync"
	"testing"

	"mmdb/internal/lock"
	"mmdb/internal/wal"
)

func TestSessionLockTableSharedCompatible(t *testing.T) {
	lt := NewLockTable()
	const res = 7
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			txn := lt.NextID()
			if _, err := lt.Acquire(context.Background(), txn, res, lock.Shared); err != nil {
				t.Error(err)
				return
			}
			lt.Release(txn)
		}()
	}
	wg.Wait()
	if err := lt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h := lt.Holders(res); len(h) != 0 {
		t.Fatalf("leaked holders %v", h)
	}
}

func TestSessionLockTableExclusiveBlocksAndFIFO(t *testing.T) {
	lt := NewLockTable()
	const res = 1
	writer := lt.NextID()
	if _, err := lt.Acquire(context.Background(), writer, res, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	// Queue readers behind the writer; they must all be granted together
	// after release, in wait-queue order.
	const readers = 4
	order := make(chan wal.TxnID, readers)
	var txns []wal.TxnID
	for i := 0; i < readers; i++ {
		txn := lt.NextID()
		txns = append(txns, txn)
		go func() {
			if _, err := lt.Acquire(context.Background(), txn, res, lock.Shared); err != nil {
				t.Error(err)
				return
			}
			order <- txn
		}()
		waitFor(t, func() bool { return len(lt.Waiting(res)) == i+1 })
	}
	lt.Release(writer)
	seen := make(map[wal.TxnID]bool)
	for i := 0; i < readers; i++ {
		seen[<-order] = true
	}
	for _, txn := range txns {
		if !seen[txn] {
			t.Fatalf("reader %d never granted", txn)
		}
		lt.Release(txn)
	}
	if err := lt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionLockTablePreCommitDependencies(t *testing.T) {
	lt := NewLockTable()
	const res = 3
	writer := lt.NextID()
	if _, err := lt.Acquire(context.Background(), writer, res, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	reader := lt.NextID()
	got := make(chan []wal.TxnID, 1)
	go func() {
		deps, err := lt.Acquire(context.Background(), reader, res, lock.Shared)
		if err != nil {
			t.Error(err)
		}
		got <- deps
	}()
	waitFor(t, func() bool { return len(lt.Waiting(res)) == 1 })
	// Pre-commit (not release): the reader is granted with a dependency on
	// the not-yet-durable writer, per §5.2.
	lt.PreCommit(writer)
	deps := <-got
	if len(deps) != 1 || deps[0] != writer {
		t.Fatalf("deps = %v, want [%d]", deps, writer)
	}
	lt.Finish(writer)
	lt.Release(reader)
	if err := lt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionLockTableCancelWhileWaiting(t *testing.T) {
	lt := NewLockTable()
	const res = 9
	holder := lt.NextID()
	if _, err := lt.Acquire(context.Background(), holder, res, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waiter := lt.NextID()
	done := make(chan error, 1)
	go func() {
		_, err := lt.Acquire(ctx, waiter, res, lock.Exclusive)
		done <- err
	}()
	waitFor(t, func() bool { return len(lt.Waiting(res)) == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("expected Canceled, got %v", err)
	}
	if w := lt.Waiting(res); len(w) != 0 {
		t.Fatalf("canceled waiter still queued: %v", w)
	}
	lt.Release(holder)
	if err := lt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLockTableRacingMixedModes stresses racing S/X acquisition across
// goroutines and resources under the race detector.
func TestSessionLockTableRacingMixedModes(t *testing.T) {
	lt := NewLockTable()
	resources := []uint64{1, 2, 3}
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				txn := lt.NextID()
				mode := lock.Shared
				if (g+i)%3 == 0 {
					mode = lock.Exclusive
				}
				if _, err := lt.AcquireAll(context.Background(), txn, resources, mode); err != nil {
					t.Error(err)
					return
				}
				lt.Release(txn)
			}
		}()
	}
	wg.Wait()
	if err := lt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, res := range resources {
		if h := lt.Holders(res); len(h) != 0 {
			t.Fatalf("resource %d leaked holders %v", res, h)
		}
	}
}
