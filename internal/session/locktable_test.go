package session

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mmdb/internal/lock"
	"mmdb/internal/wal"
)

func TestSessionLockTableSharedCompatible(t *testing.T) {
	lt := NewLockTable()
	const res = 7
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			txn := lt.NextID()
			if _, err := lt.Acquire(context.Background(), txn, res, lock.Shared); err != nil {
				t.Error(err)
				return
			}
			lt.Release(txn)
		}()
	}
	wg.Wait()
	if err := lt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h := lt.Holders(res); len(h) != 0 {
		t.Fatalf("leaked holders %v", h)
	}
}

func TestSessionLockTableExclusiveBlocksAndFIFO(t *testing.T) {
	lt := NewLockTable()
	const res = 1
	writer := lt.NextID()
	if _, err := lt.Acquire(context.Background(), writer, res, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	// Queue readers behind the writer; they must all be granted together
	// after release, in wait-queue order.
	const readers = 4
	order := make(chan wal.TxnID, readers)
	var txns []wal.TxnID
	for i := 0; i < readers; i++ {
		txn := lt.NextID()
		txns = append(txns, txn)
		go func() {
			if _, err := lt.Acquire(context.Background(), txn, res, lock.Shared); err != nil {
				t.Error(err)
				return
			}
			order <- txn
		}()
		waitFor(t, func() bool { return len(lt.Waiting(res)) == i+1 })
	}
	lt.Release(writer)
	seen := make(map[wal.TxnID]bool)
	for i := 0; i < readers; i++ {
		seen[<-order] = true
	}
	for _, txn := range txns {
		if !seen[txn] {
			t.Fatalf("reader %d never granted", txn)
		}
		lt.Release(txn)
	}
	if err := lt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionLockTablePreCommitDependencies(t *testing.T) {
	lt := NewLockTable()
	const res = 3
	writer := lt.NextID()
	if _, err := lt.Acquire(context.Background(), writer, res, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	reader := lt.NextID()
	got := make(chan []wal.TxnID, 1)
	go func() {
		deps, err := lt.Acquire(context.Background(), reader, res, lock.Shared)
		if err != nil {
			t.Error(err)
		}
		got <- deps
	}()
	waitFor(t, func() bool { return len(lt.Waiting(res)) == 1 })
	// Pre-commit (not release): the reader is granted with a dependency on
	// the not-yet-durable writer, per §5.2.
	lt.PreCommit(writer)
	deps := <-got
	if len(deps) != 1 || deps[0] != writer {
		t.Fatalf("deps = %v, want [%d]", deps, writer)
	}
	lt.Finish(writer)
	lt.Release(reader)
	if err := lt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionLockTableCancelWhileWaiting(t *testing.T) {
	lt := NewLockTable()
	const res = 9
	holder := lt.NextID()
	if _, err := lt.Acquire(context.Background(), holder, res, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waiter := lt.NextID()
	done := make(chan error, 1)
	go func() {
		_, err := lt.Acquire(ctx, waiter, res, lock.Exclusive)
		done <- err
	}()
	waitFor(t, func() bool { return len(lt.Waiting(res)) == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("expected Canceled, got %v", err)
	}
	if w := lt.Waiting(res); len(w) != 0 {
		t.Fatalf("canceled waiter still queued: %v", w)
	}
	lt.Release(holder)
	if err := lt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLockTableRacingMixedModes stresses racing S/X acquisition across
// goroutines and resources under the race detector.
func TestSessionLockTableRacingMixedModes(t *testing.T) {
	lt := NewLockTable()
	resources := []uint64{1, 2, 3}
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				txn := lt.NextID()
				mode := lock.Shared
				if (g+i)%3 == 0 {
					mode = lock.Exclusive
				}
				if _, err := lt.AcquireAll(context.Background(), txn, resources, mode); err != nil {
					t.Error(err)
					return
				}
				lt.Release(txn)
			}
		}()
	}
	wg.Wait()
	if err := lt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, res := range resources {
		if h := lt.Holders(res); len(h) != 0 {
			t.Fatalf("resource %d leaked holders %v", res, h)
		}
	}
}

// TestSessionLockTableQuiesceExclusive: the promotion barrier. A quiesce
// with writers holding and queued blocks until they all finish, returns
// immediately on an idle table, respects context cancellation, and —
// combined with an exclusive guard refusing new writers — observes a
// drained table that stays drained.
func TestSessionLockTableQuiesceExclusive(t *testing.T) {
	lt := NewLockTable()
	ctx := context.Background()

	// Idle table: immediate.
	if err := lt.QuiesceExclusive(ctx); err != nil {
		t.Fatalf("quiesce on idle table: %v", err)
	}

	// One holder, one queued writer behind it.
	const res = 3
	holder := lt.NextID()
	if _, err := lt.Acquire(ctx, holder, res, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	queuedDone := make(chan struct{})
	queued := lt.NextID()
	go func() {
		defer close(queuedDone)
		if _, err := lt.Acquire(ctx, queued, res, lock.Exclusive); err != nil {
			t.Error(err)
			return
		}
		lt.Release(queued)
	}()
	for {
		if p, h := lt.ExclusiveInFlight(); p == 1 && h == 1 {
			break
		}
	}

	quiesced := make(chan error, 1)
	go func() { quiesced <- lt.QuiesceExclusive(ctx) }()
	select {
	case <-quiesced:
		t.Fatal("quiesce returned with a writer holding and another queued")
	case <-time.After(10 * time.Millisecond):
	}

	// Fence new writers (the promotion guard), then let the in-flight
	// ones finish: the quiesce must complete.
	lt.SetExclusiveGuard(func(uint64) error { return errors.New("fenced") })
	lt.Release(holder)
	<-queuedDone
	if err := <-quiesced; err != nil {
		t.Fatalf("quiesce after drain: %v", err)
	}
	if p, h := lt.ExclusiveInFlight(); p != 0 || h != 0 {
		t.Fatalf("in-flight (%d pending, %d held) after drain", p, h)
	}
	// The fence holds: a new writer is refused at the lock layer, a
	// reader passes.
	if _, err := lt.Acquire(ctx, lt.NextID(), res, lock.Exclusive); err == nil {
		t.Fatal("guard admitted a new exclusive during the fence")
	}
	rd := lt.NextID()
	if _, err := lt.Acquire(ctx, rd, res, lock.Shared); err != nil {
		t.Fatalf("guard blocked a shared intent: %v", err)
	}
	lt.Release(rd)

	// A pre-committed writer no longer blocks the barrier (§5.2 group
	// commit: its effects are shipped; durability is the log's problem).
	lt.SetExclusiveGuard(nil)
	pc := lt.NextID()
	if _, err := lt.Acquire(ctx, pc, res, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	lt.PreCommit(pc)
	if err := lt.QuiesceExclusive(ctx); err != nil {
		t.Fatalf("quiesce over a pre-committed writer: %v", err)
	}
	lt.Finish(pc)

	// Cancellation: a quiesce that cannot complete returns ctx's error.
	blocker := lt.NextID()
	if _, err := lt.Acquire(ctx, blocker, res, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	shortCtx, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancel()
	if err := lt.QuiesceExclusive(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled quiesce: %v, want deadline exceeded", err)
	}
	lt.Release(blocker)
	if err := lt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
