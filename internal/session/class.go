package session

import (
	"fmt"
	"math/bits"
	"time"
)

// Class is an admission priority class. The terminal-latency analysis in
// §5.1 assumes short interactive requests are not stuck behind bulk work;
// multiclass admission is how the scheduler and broker deliver that:
// each class has its own FIFO queue, depth, metrics and (optionally) a
// reserved page budget.
//
// Classes are ordered by priority: a lower value outranks a higher one at
// slot-grant time under StrictPriority.
type Class int

// Priority classes.
const (
	// Interactive is the high-priority class for short §5.1-style
	// lookups and selections: under StrictPriority it is granted freed
	// slots ahead of any queued Batch work (no in-flight preemption).
	Interactive Class = iota
	// Batch is the default class for bulk joins, aggregates and scans.
	Batch
	// NumClasses sizes per-class arrays.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Valid reports whether c names a real class.
func (c Class) Valid() bool { return c >= 0 && c < NumClasses }

// PickPolicy selects how a freed slot chooses among non-empty class
// queues.
type PickPolicy int

// Pick policies.
const (
	// StrictPriority always grants the freed slot to the head of the
	// highest-priority non-empty queue: Interactive preempts Batch at
	// grant time. Running queries are never interrupted, so a batch
	// query at most delays an interactive one by its own residual
	// service time.
	StrictPriority PickPolicy = iota
	// WeightedFair grants slots so that over time each backlogged class
	// receives slot grants in proportion to its configured Weight: the
	// non-empty class with the smallest served/weight ratio wins the
	// freed slot.
	WeightedFair
)

func (p PickPolicy) String() string {
	switch p {
	case StrictPriority:
		return "strict"
	case WeightedFair:
		return "weighted"
	default:
		return fmt.Sprintf("PickPolicy(%d)", int(p))
	}
}

// ClassLimits configures one class's admission queue.
type ClassLimits struct {
	// QueueDepth bounds how many queries of this class may wait for a
	// slot before arrivals are rejected. Negative means no queue.
	QueueDepth int
	// Weight is the class's share under WeightedFair; < 1 is clamped
	// to 1. Ignored under StrictPriority.
	Weight int
}

// OverloadError is the concrete rejection returned when a class's
// admission queue is full. It wraps ErrOverloaded — errors.Is(err,
// ErrOverloaded) still matches — while telling the caller which class
// shed the query and at what configured depth, so interactive and batch
// shedding can be distinguished and handled differently.
type OverloadError struct {
	Class Class // class whose queue rejected the query
	Depth int   // configured queue depth that was full
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("session: overloaded: %s admission queue full (depth %d)", e.Class, e.Depth)
}

// Unwrap makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// HistBuckets is the number of log₂-microsecond buckets in a Histogram.
// Bucket i counts observations in [2^(i-1), 2^i) µs (bucket 0 is < 1 µs);
// the last bucket absorbs everything ≥ 2^(HistBuckets-2) µs (~5 hours).
const HistBuckets = 36

// Histogram is a fixed-size log-scale latency histogram. The zero value
// is ready to use. It is not itself synchronized; the scheduler updates
// it under its own mutex and Metrics returns copies.
type Histogram struct {
	Counts [HistBuckets]uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us)) // 0 for d < 1µs
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.Counts[i]++
}

// Merge adds o's counts into h.
func (h *Histogram) Merge(o Histogram) {
	for i, n := range o.Counts {
		h.Counts[i] += n
	}
}

// Total returns the number of observations.
func (h Histogram) Total() uint64 {
	var t uint64
	for _, n := range h.Counts {
		t += n
	}
	return t
}

// Quantile returns an upper bound on the p-quantile (p in [0,1]): the
// upper edge of the bucket holding the rank-p observation. Resolution is
// a factor of two — good enough for p50/p95/p99 tail reporting; exact
// percentiles come from raw samples where experiments need them.
func (h Histogram) Quantile(p float64) time.Duration {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, n := range h.Counts {
		seen += n
		if seen > rank {
			// Upper edge of bucket i: 2^i µs (bucket 0 is < 1 µs).
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<uint(HistBuckets-1)) * time.Microsecond
}
