package session

import (
	"context"
	"fmt"
	"sync"
)

// Policy selects how the broker sizes default grants.
type Policy int

// Memory policies.
const (
	// StaticShare grants every query of a class the same fixed share,
	// (general + reserved[class])/slots (clamped to the minimum useful
	// grant). Grants are independent of instantaneous load, which keeps
	// planner choices and virtual-clock accounting bit-identical whether
	// queries run serially or concurrently — the default, and the policy
	// the determinism acceptance tests assert against.
	StaticShare Policy = iota
	// Greedy grants an admitted query all pages its class may currently
	// draw (at least the minimum grant). Adaptive — a lone query gets the
	// whole |M|, a crowd divides it by arrival order — but grant sizes
	// then depend on timing, so per-query virtual costs are only
	// reproducible for serial workloads.
	Greedy
)

func (p Policy) String() string {
	switch p {
	case StaticShare:
		return "static"
	case Greedy:
		return "greedy"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// MinGrant is the smallest memory grant the broker will hand out: the
// engine needs at least two pages (one input, one output) for any §3
// operator to make progress.
const MinGrant = 2

// Broker partitions a fixed budget of memory pages into per-query
// grants. The budget splits into a general pool plus an optional
// reserved pool per class: a class's grants draw its own reserved pool
// first, then the general pool, and can never touch another class's
// reservation — so batch grants cannot starve interactive |M|, the
// multiclass analogue of the paper's "memory is the resource" stance.
//
// With the StaticShare policy each class's share is sized to
// (general + reserved[class])/slots, which guarantees that any mix of
// at most `slots` admitted queries always fits: admitted queries never
// block on memory, only on admission. Reservations queue FIFO per class
// when the pools are exhausted (explicit-size or Greedy grants can
// exceed the share); the invariant granted <= total holds at all times
// (checked, with a high-water mark for audits). It is safe for
// concurrent use.
type Broker struct {
	total    int
	general  int // total minus all reservations
	reserved [NumClasses]int
	share    [NumClasses]int // StaticShare grant size per class
	policy   Policy

	mu      sync.Mutex
	freeGen int
	freeRes [NumClasses]int
	peak    int // high-water mark of granted pages
	grants  uint64
	queues  [NumClasses][]*memWaiter
}

type memWaiter struct {
	need  int // pages that must be drawable before this waiter is granted
	want  int // 0 means policy default
	ready chan int
}

// NewBroker returns a broker over total pages serving at most slots
// concurrent queries under the given policy, with reserved[c] pages set
// aside for exclusive use by class c. Reservations are clamped so the
// general pool keeps at least MinGrant pages; each class's static share
// is (general + reserved[class])/slots, clamped up to MinGrant and down
// to the class's maximum drawable pool.
func NewBroker(total, slots int, policy Policy, reserved [NumClasses]int) *Broker {
	if total < MinGrant {
		total = MinGrant
	}
	if slots < 1 {
		slots = 1
	}
	b := &Broker{total: total, policy: policy}
	// Clamp reservations: never reserve past total-MinGrant overall.
	budget := total - MinGrant
	for c := 0; c < int(NumClasses); c++ {
		r := reserved[c]
		if r < 0 {
			r = 0
		}
		if r > budget {
			r = budget
		}
		budget -= r
		b.reserved[c] = r
	}
	sum := 0
	for _, r := range b.reserved {
		sum += r
	}
	b.general = total - sum
	b.freeGen = b.general
	for c := 0; c < int(NumClasses); c++ {
		b.freeRes[c] = b.reserved[c]
		share := (b.general + b.reserved[c]) / slots
		if share < MinGrant {
			share = MinGrant
		}
		if max := b.general + b.reserved[c]; share > max {
			share = max
		}
		b.share[c] = share
	}
	return b
}

// NewUnreservedBroker is NewBroker with no per-class reservations: every
// class shares one pool and one share size, the pre-multiclass behavior.
func NewUnreservedBroker(total, slots int, policy Policy) *Broker {
	return NewBroker(total, slots, policy, [NumClasses]int{})
}

// Total returns the brokered budget |M|.
func (b *Broker) Total() int { return b.total }

// Reserved returns the pages set aside for class c.
func (b *Broker) Reserved(c Class) int { return b.reserved[c] }

// Share returns the StaticShare grant size for class c.
func (b *Broker) Share(c Class) int { return b.share[c] }

// Policy returns the grant policy.
func (b *Broker) Policy() Policy { return b.policy }

// classMax returns the largest pool class c may ever draw from.
func (b *Broker) classMax(c Class) int { return b.general + b.reserved[c] }

// Reserve blocks until a grant is available for class and returns its
// size in pages. want == 0 requests the policy default; want > 0
// requests an explicit size (clamped to [MinGrant, the class's drawable
// pool]) — the path used when a pre-optimized plan must execute with the
// |M| it was costed against. Waiters are served strictly FIFO within a
// class, higher-priority classes first across classes; a waiter whose
// context ends while queued is removed without a grant.
func (b *Broker) Reserve(ctx context.Context, class Class, want int) (int, error) {
	if !class.Valid() {
		class = Batch
	}
	if max := b.classMax(class); want > max {
		want = max
	}
	if want != 0 && want < MinGrant {
		want = MinGrant
	}
	b.mu.Lock()
	if err := ctx.Err(); err != nil {
		b.mu.Unlock()
		return 0, err
	}
	need := b.needFor(class, want)
	if len(b.queues[class]) == 0 && b.drawableLocked(class) >= need {
		grant := b.grantLocked(class, want)
		b.mu.Unlock()
		return grant, nil
	}
	w := &memWaiter{need: need, want: want, ready: make(chan int, 1)}
	b.queues[class] = append(b.queues[class], w)
	b.mu.Unlock()

	select {
	case grant := <-w.ready:
		return grant, nil
	case <-ctx.Done():
		b.mu.Lock()
		select {
		case grant := <-w.ready:
			// Granted concurrently with cancellation: keep the grant so
			// the pages are returned exactly once, via the caller's
			// Release.
			b.mu.Unlock()
			return grant, nil
		default:
		}
		for i, q := range b.queues[class] {
			if q == w {
				b.queues[class] = append(b.queues[class][:i], b.queues[class][i+1:]...)
				break
			}
		}
		b.mu.Unlock()
		return 0, ctx.Err()
	}
}

// drawableLocked returns the pages class c could take right now.
func (b *Broker) drawableLocked(c Class) int { return b.freeGen + b.freeRes[c] }

// needFor returns the drawable pages required before a request can be
// granted.
func (b *Broker) needFor(class Class, want int) int {
	if want > 0 {
		return want
	}
	if b.policy == Greedy {
		return MinGrant
	}
	return b.share[class]
}

// grantLocked carves the grant out of the class's reserved pool first,
// then the general pool.
func (b *Broker) grantLocked(class Class, want int) int {
	grant := want
	if grant == 0 {
		if b.policy == Greedy {
			grant = b.drawableLocked(class) // everything the class may draw
		} else {
			grant = b.share[class]
		}
	}
	if grant > b.drawableLocked(class) {
		// Unreachable by construction (need <= grant checked before the
		// grant); guard the invariant anyway.
		panic(fmt.Sprintf("session: broker over-grant: %s wants %d, drawable %d",
			class, grant, b.drawableLocked(class)))
	}
	fromRes := grant
	if fromRes > b.freeRes[class] {
		fromRes = b.freeRes[class]
	}
	b.freeRes[class] -= fromRes
	b.freeGen -= grant - fromRes
	b.grants++
	if used := b.total - b.freeLocked(); used > b.peak {
		b.peak = used
	}
	return grant
}

// freeLocked sums every pool's free pages.
func (b *Broker) freeLocked() int {
	free := b.freeGen
	for _, r := range b.freeRes {
		free += r
	}
	return free
}

// Release returns a class's grant to its pools — the reserved pool is
// refilled first, the remainder goes to the general pool — and serves
// eligible queued waiters: higher-priority classes first, strictly FIFO
// within a class (a class's head blocks its later arrivals even if they
// would fit — no intra-class starvation).
func (b *Broker) Release(class Class, pages int) {
	if pages == 0 {
		return
	}
	if !class.Valid() {
		class = Batch
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	toRes := b.reserved[class] - b.freeRes[class]
	if toRes > pages {
		toRes = pages
	}
	b.freeRes[class] += toRes
	b.freeGen += pages - toRes
	if free := b.freeLocked(); free > b.total {
		panic(fmt.Sprintf("session: broker released more than granted: free %d > total %d", free, b.total))
	}
	for c := 0; c < int(NumClasses); c++ {
		for len(b.queues[c]) > 0 {
			w := b.queues[c][0]
			if b.drawableLocked(Class(c)) < w.need {
				break
			}
			b.queues[c] = b.queues[c][1:]
			w.ready <- b.grantLocked(Class(c), w.want)
		}
	}
}

// Granted returns the pages currently out on grant.
func (b *Broker) Granted() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total - b.freeLocked()
}

// Peak returns the high-water mark of pages simultaneously granted; it can
// never exceed Total.
func (b *Broker) Peak() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// Grants returns the count of grants issued.
func (b *Broker) Grants() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.grants
}
