package session

import (
	"context"
	"fmt"
	"sync"
)

// Policy selects how the broker sizes default grants.
type Policy int

// Memory policies.
const (
	// StaticShare grants every query the same fixed share,
	// total/slots (clamped to the minimum useful grant). Grants are
	// independent of instantaneous load, which keeps planner choices and
	// virtual-clock accounting bit-identical whether queries run serially
	// or concurrently — the default, and the policy the determinism
	// acceptance tests assert against.
	StaticShare Policy = iota
	// Greedy grants an admitted query all currently-free pages (at least
	// the minimum grant). Adaptive — a lone query gets the whole |M|, a
	// crowd divides it by arrival order — but grant sizes then depend on
	// timing, so per-query virtual costs are only reproducible for
	// serial workloads.
	Greedy
)

func (p Policy) String() string {
	switch p {
	case StaticShare:
		return "static"
	case Greedy:
		return "greedy"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// MinGrant is the smallest memory grant the broker will hand out: the
// engine needs at least two pages (one input, one output) for any §3
// operator to make progress.
const MinGrant = 2

// Broker partitions a fixed budget of memory pages into per-query grants.
// Reservations queue FIFO when the budget is exhausted; the invariant
// granted <= total holds at all times (checked, with a high-water mark for
// audits). It is safe for concurrent use.
type Broker struct {
	total  int
	share  int // StaticShare grant size
	policy Policy

	mu     sync.Mutex
	free   int
	peak   int // high-water mark of granted pages
	grants uint64
	queue  []*memWaiter
}

type memWaiter struct {
	need  int // pages that must be free before this waiter can be granted
	want  int // 0 means policy default
	ready chan int
}

// NewBroker returns a broker over total pages serving at most slots
// concurrent queries under the given policy. The static share is
// total/slots, clamped up to MinGrant and down to total.
func NewBroker(total, slots int, policy Policy) *Broker {
	if total < MinGrant {
		total = MinGrant
	}
	if slots < 1 {
		slots = 1
	}
	share := total / slots
	if share < MinGrant {
		share = MinGrant
	}
	if share > total {
		share = total
	}
	return &Broker{total: total, share: share, policy: policy, free: total}
}

// Total returns the brokered budget |M|.
func (b *Broker) Total() int { return b.total }

// Share returns the StaticShare grant size.
func (b *Broker) Share() int { return b.share }

// Policy returns the grant policy.
func (b *Broker) Policy() Policy { return b.policy }

// Reserve blocks until a grant is available and returns its size in
// pages. want == 0 requests the policy default; want > 0 requests an
// explicit size (clamped to [MinGrant, total]) — the path used when a
// pre-optimized plan must execute with the |M| it was costed against.
// Waiters are served strictly FIFO; a waiter whose context ends while
// queued is removed without a grant.
func (b *Broker) Reserve(ctx context.Context, want int) (int, error) {
	if want > b.total {
		want = b.total
	}
	if want != 0 && want < MinGrant {
		want = MinGrant
	}
	b.mu.Lock()
	if err := ctx.Err(); err != nil {
		b.mu.Unlock()
		return 0, err
	}
	need := b.needFor(want)
	if len(b.queue) == 0 && b.free >= need {
		grant := b.grantLocked(want)
		b.mu.Unlock()
		return grant, nil
	}
	w := &memWaiter{need: need, want: want, ready: make(chan int, 1)}
	b.queue = append(b.queue, w)
	b.mu.Unlock()

	select {
	case grant := <-w.ready:
		return grant, nil
	case <-ctx.Done():
		b.mu.Lock()
		select {
		case grant := <-w.ready:
			// Granted concurrently with cancellation: keep the grant so
			// the pages are returned exactly once, via the caller's
			// Release.
			b.mu.Unlock()
			return grant, nil
		default:
		}
		for i, q := range b.queue {
			if q == w {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				break
			}
		}
		b.mu.Unlock()
		return 0, ctx.Err()
	}
}

// needFor returns the free pages required before a request can be granted.
func (b *Broker) needFor(want int) int {
	if want > 0 {
		return want
	}
	if b.policy == Greedy {
		return MinGrant
	}
	return b.share
}

// grantLocked carves the grant out of the free pool.
func (b *Broker) grantLocked(want int) int {
	grant := want
	if grant == 0 {
		if b.policy == Greedy {
			grant = b.free // everything currently free
		} else {
			grant = b.share
		}
	}
	if grant > b.free {
		// Unreachable by construction (need <= grant checked before the
		// grant); guard the invariant anyway.
		panic(fmt.Sprintf("session: broker over-grant: want %d, free %d", grant, b.free))
	}
	b.free -= grant
	b.grants++
	if used := b.total - b.free; used > b.peak {
		b.peak = used
	}
	return grant
}

// Release returns a grant to the pool and serves eligible queued waiters
// in FIFO order (the head blocks later arrivals even if they would fit —
// no starvation).
func (b *Broker) Release(pages int) {
	if pages == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.free += pages
	if b.free > b.total {
		panic(fmt.Sprintf("session: broker released more than granted: free %d > total %d", b.free, b.total))
	}
	for len(b.queue) > 0 {
		w := b.queue[0]
		if b.free < w.need {
			return
		}
		b.queue = b.queue[1:]
		w.ready <- b.grantLocked(w.want)
	}
}

// Granted returns the pages currently out on grant.
func (b *Broker) Granted() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total - b.free
}

// Peak returns the high-water mark of pages simultaneously granted; it can
// never exceed Total.
func (b *Broker) Peak() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// Grants returns the count of grants issued.
func (b *Broker) Grants() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.grants
}
