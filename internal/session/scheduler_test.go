package session

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestSessionSchedulerAdmitAndOverload(t *testing.T) {
	s := NewFIFOScheduler(2, 1)
	if _, err := s.Admit(context.Background(), Batch); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Admit(context.Background(), Batch); err != nil {
		t.Fatal(err)
	}
	// Slots full; one waiter fits the queue, the next must be rejected.
	done := make(chan error, 1)
	go func() {
		_, err := s.Admit(context.Background(), Batch)
		done <- err
	}()
	waitFor(t, func() bool { return s.Queued() == 1 })
	if _, err := s.Admit(context.Background(), Batch); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	s.Done(Batch)
	if err := <-done; err != nil {
		t.Fatalf("queued admission failed: %v", err)
	}
	m := s.Metrics().Total()
	if m.Admitted != 3 || m.Rejected != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestSessionSchedulerFIFO(t *testing.T) {
	s := NewFIFOScheduler(1, 16)
	if _, err := s.Admit(context.Background(), Batch); err != nil {
		t.Fatal(err)
	}
	const waiters = 8
	order := make(chan int, waiters)
	var started sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		started.Add(1)
		go func() {
			// Serialize queue entry so FIFO order is deterministic.
			started.Done()
			if _, err := s.Admit(context.Background(), Batch); err != nil {
				t.Error(err)
				return
			}
			order <- i
			s.Done(Batch)
		}()
		waitFor(t, func() bool { return s.Queued() == i+1 })
	}
	started.Wait()
	s.Done(Batch) // release the initial slot; waiters drain in queue order
	for want := 0; want < waiters; want++ {
		if got := <-order; got != want {
			t.Fatalf("FIFO violated: got %d, want %d", got, want)
		}
	}
}

func TestSessionSchedulerCancelWhileQueued(t *testing.T) {
	s := NewFIFOScheduler(1, 4)
	if _, err := s.Admit(context.Background(), Batch); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx, Batch)
		done <- err
	}()
	waitFor(t, func() bool { return s.Queued() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if s.Queued() != 0 {
		t.Fatalf("canceled waiter still queued")
	}
	// The slot is still usable and the canceled waiter never consumed it.
	s.Done(Batch)
	if _, err := s.Admit(context.Background(), Batch); err != nil {
		t.Fatal(err)
	}
}

func TestSessionSchedulerDeadline(t *testing.T) {
	s := NewFIFOScheduler(1, 4)
	if _, err := s.Admit(context.Background(), Batch); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := s.Admit(ctx, Batch); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
}

func TestSessionSchedulerClose(t *testing.T) {
	s := NewFIFOScheduler(1, 4)
	s.Close()
	if _, err := s.Admit(context.Background(), Batch); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
