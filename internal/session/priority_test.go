package session

import (
	"context"
	"errors"
	"testing"
	"time"
)

func limits(depth, iw, bw int) [NumClasses]ClassLimits {
	var l [NumClasses]ClassLimits
	l[Interactive] = ClassLimits{QueueDepth: depth, Weight: iw}
	l[Batch] = ClassLimits{QueueDepth: depth, Weight: bw}
	return l
}

// TestSchedulerStrictPriorityPick saturates the slot with batch work,
// queues batch and interactive waiters, and asserts every freed slot
// goes to the interactive queue first — grant-time preemption.
func TestSchedulerStrictPriorityPick(t *testing.T) {
	s := NewScheduler(1, StrictPriority, limits(16, 1, 1))
	if _, err := s.Admit(context.Background(), Batch); err != nil {
		t.Fatal(err)
	}
	// Queue two batch waiters first, then one interactive.
	got := make(chan Class, 3)
	for i := 0; i < 2; i++ {
		go func() {
			if _, err := s.Admit(context.Background(), Batch); err != nil {
				t.Error(err)
				return
			}
			got <- Batch
		}()
		waitFor(t, func() bool { return s.QueuedClass(Batch) == i+1 })
	}
	go func() {
		if _, err := s.Admit(context.Background(), Interactive); err != nil {
			t.Error(err)
			return
		}
		got <- Interactive
	}()
	waitFor(t, func() bool { return s.QueuedClass(Interactive) == 1 })

	order := make([]Class, 0, 3)
	for i := 0; i < 3; i++ {
		s.Done(Batch) // class of the releaser doesn't affect the pick
		order = append(order, <-got)
	}
	want := []Class{Interactive, Batch, Batch}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
	m := s.Metrics()
	if m.PerClass[Interactive].Admitted != 1 || m.PerClass[Batch].Admitted != 3 {
		t.Fatalf("per-class admitted = %+v", m)
	}
	if m.PerClass[Interactive].Queued.Total() != 1 {
		t.Fatalf("interactive histogram count = %d, want 1", m.PerClass[Interactive].Queued.Total())
	}
}

// TestSchedulerWeightedFairShares keeps both classes backlogged through
// many grant cycles and asserts the grant split converges to the
// configured 3:1 weights within tolerance. Granted waiters hold their
// slot until the driver releases it, so exactly one grant happens per
// cycle and both queues stay non-empty at every pick.
func TestSchedulerWeightedFairShares(t *testing.T) {
	s := NewScheduler(1, WeightedFair, limits(8, 3, 1))
	if _, err := s.Admit(context.Background(), Batch); err != nil {
		t.Fatal(err)
	}
	got := make(chan Class, 1)
	enqueue := func(c Class) {
		go func() {
			if _, err := s.Admit(context.Background(), c); err != nil {
				t.Error(err)
				return
			}
			got <- c // hold the slot until the driver calls Done(c)
		}()
	}
	enqueue(Interactive)
	enqueue(Batch)
	waitFor(t, func() bool { return s.QueuedClass(Interactive) == 1 && s.QueuedClass(Batch) == 1 })

	const rounds = 200
	counts := make(map[Class]int)
	held := Batch // class of the slot currently in flight
	for i := 0; i < rounds; i++ {
		s.Done(held)
		held = <-got
		counts[held]++
		// Re-arm the drained class so both queues stay backlogged.
		enqueue(held)
		waitFor(t, func() bool {
			return s.QueuedClass(Interactive) >= 1 && s.QueuedClass(Batch) >= 1
		})
	}
	frac := float64(counts[Interactive]) / float64(rounds)
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("interactive share = %.3f (i=%d b=%d), want ~0.75",
			frac, counts[Interactive], counts[Batch])
	}
}

// TestSchedulerOverloadErrorClass asserts rejections carry the shedding
// class and depth while still matching ErrOverloaded.
func TestSchedulerOverloadErrorClass(t *testing.T) {
	var l [NumClasses]ClassLimits
	l[Interactive] = ClassLimits{QueueDepth: 0, Weight: 1}
	l[Batch] = ClassLimits{QueueDepth: 1, Weight: 1}
	s := NewScheduler(1, StrictPriority, l)
	if _, err := s.Admit(context.Background(), Batch); err != nil {
		t.Fatal(err)
	}
	_, err := s.Admit(context.Background(), Interactive)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("interactive rejection: %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Class != Interactive || oe.Depth != 0 {
		t.Fatalf("interactive rejection detail = %+v", oe)
	}
	// Batch has one queue seat: first queues, second is rejected as batch.
	go func() {
		if _, err := s.Admit(context.Background(), Batch); err != nil {
			t.Error(err)
			return
		}
		s.Done(Batch)
	}()
	waitFor(t, func() bool { return s.QueuedClass(Batch) == 1 })
	_, err = s.Admit(context.Background(), Batch)
	if !errors.As(err, &oe) || oe.Class != Batch || oe.Depth != 1 {
		t.Fatalf("batch rejection = %v (detail %+v)", err, oe)
	}
	m := s.Metrics()
	if m.PerClass[Interactive].Rejected != 1 || m.PerClass[Batch].Rejected != 1 {
		t.Fatalf("per-class rejected = %+v", m)
	}
	s.Done(Batch)
}

// TestBrokerClassReservation asserts batch grants can never draw the
// interactive reservation, and that an interactive grant is available
// immediately even when batch holds everything it can.
func TestBrokerClassReservation(t *testing.T) {
	var reserved [NumClasses]int
	reserved[Interactive] = 40
	b := NewBroker(100, 2, StaticShare, reserved)
	if b.Reserved(Interactive) != 40 || b.Reserved(Batch) != 0 {
		t.Fatalf("reservations = %d/%d", b.Reserved(Interactive), b.Reserved(Batch))
	}
	// Shares: general 60 → batch (60+0)/2 = 30, interactive (60+40)/2 = 50.
	if b.Share(Batch) != 30 || b.Share(Interactive) != 50 {
		t.Fatalf("shares = %d/%d", b.Share(Batch), b.Share(Interactive))
	}
	// Batch asks for everything it may draw: 60 pages, not 100.
	g, err := b.Reserve(context.Background(), Batch, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g != 60 {
		t.Fatalf("batch max grant = %d, want 60 (general only)", g)
	}
	// The interactive reservation is untouched: a share-sized interactive
	// grant still fits without waiting.
	gi, err := b.Reserve(context.Background(), Interactive, 40)
	if err != nil {
		t.Fatal(err)
	}
	if gi != 40 {
		t.Fatalf("interactive grant = %d, want 40", gi)
	}
	if b.Granted() != 100 {
		t.Fatalf("granted = %d", b.Granted())
	}
	b.Release(Batch, g)
	b.Release(Interactive, gi)
	if b.Granted() != 0 {
		t.Fatalf("granted after release = %d", b.Granted())
	}
}

// TestBrokerStaticSharesAlwaysFit asserts the multiclass share sizing
// invariant: any admitted mix of ≤ slots static-share grants fits
// without a memory wait.
func TestBrokerStaticSharesAlwaysFit(t *testing.T) {
	var reserved [NumClasses]int
	reserved[Interactive] = 64
	reserved[Batch] = 16
	const slots = 4
	b := NewBroker(256, slots, StaticShare, reserved)
	for k := 0; k <= slots; k++ { // k interactive, slots-k batch
		var grants []int
		var classes []Class
		for i := 0; i < k; i++ {
			g, err := b.Reserve(context.Background(), Interactive, 0)
			if err != nil {
				t.Fatal(err)
			}
			if g != b.Share(Interactive) {
				t.Fatalf("interactive grant = %d, want share %d", g, b.Share(Interactive))
			}
			grants, classes = append(grants, g), append(classes, Interactive)
		}
		for i := 0; i < slots-k; i++ {
			g, err := b.Reserve(context.Background(), Batch, 0)
			if err != nil {
				t.Fatal(err)
			}
			if g != b.Share(Batch) {
				t.Fatalf("batch grant = %d, want share %d", g, b.Share(Batch))
			}
			grants, classes = append(grants, g), append(classes, Batch)
		}
		if b.Peak() > b.Total() {
			t.Fatalf("mix %d/%d over-granted: peak %d", k, slots-k, b.Peak())
		}
		for i, g := range grants {
			b.Release(classes[i], g)
		}
		if b.Granted() != 0 {
			t.Fatalf("mix %d leaked %d pages", k, b.Granted())
		}
	}
}

// TestHistogramQuantiles sanity-checks the log-scale histogram's
// bucketing and quantile bounds.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile = %v", h.Quantile(0.5))
	}
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Microsecond) // bucket [2,4)µs → upper edge 4µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(900 * time.Microsecond) // bucket [512,1024)µs → 1024µs
	}
	if h.Total() != 100 {
		t.Fatalf("total = %d", h.Total())
	}
	if q := h.Quantile(0.50); q != 4*time.Microsecond {
		t.Fatalf("p50 = %v, want 4µs", q)
	}
	if q := h.Quantile(0.95); q != 1024*time.Microsecond {
		t.Fatalf("p95 = %v, want 1.024ms", q)
	}
	// Sub-microsecond and huge observations land in the end buckets.
	h.Observe(0)
	h.Observe(500 * time.Hour)
	if h.Total() != 102 {
		t.Fatalf("total = %d", h.Total())
	}
}
