package session

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestSessionBrokerStaticShareDeterministic(t *testing.T) {
	b := NewUnreservedBroker(1000, 8, StaticShare)
	if b.Share(Batch) != 125 {
		t.Fatalf("share = %d, want 125", b.Share(Batch))
	}
	// Every default grant is the same size regardless of load.
	var grants []int
	for i := 0; i < 8; i++ {
		g, err := b.Reserve(context.Background(), Batch, 0)
		if err != nil {
			t.Fatal(err)
		}
		grants = append(grants, g)
	}
	for _, g := range grants {
		if g != 125 {
			t.Fatalf("grants = %v, want all 125", grants)
		}
	}
	if b.Granted() != 1000 {
		t.Fatalf("granted = %d", b.Granted())
	}
	for range grants {
		b.Release(Batch, 125)
	}
	if b.Granted() != 0 {
		t.Fatalf("granted after release = %d", b.Granted())
	}
}

func TestSessionBrokerGreedyAdaptive(t *testing.T) {
	b := NewUnreservedBroker(100, 4, Greedy)
	g1, err := b.Reserve(context.Background(), Batch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != 100 {
		t.Fatalf("lone greedy grant = %d, want all 100", g1)
	}
	// A second query blocks until the first releases.
	got := make(chan int, 1)
	go func() {
		g, err := b.Reserve(context.Background(), Batch, 0)
		if err != nil {
			t.Error(err)
		}
		got <- g
	}()
	b.Release(Batch, g1)
	if g2 := <-got; g2 != 100 {
		t.Fatalf("second greedy grant = %d, want 100", g2)
	}
	b.Release(Batch, 100)
}

func TestSessionBrokerExplicitWantAndFIFO(t *testing.T) {
	b := NewUnreservedBroker(100, 4, StaticShare)
	g, err := b.Reserve(context.Background(), Batch, 60)
	if err != nil {
		t.Fatal(err)
	}
	if g != 60 {
		t.Fatalf("explicit grant = %d, want 60", g)
	}
	// A head waiter needing 60 blocks a later small request even though 40
	// pages are free — strict FIFO, no starvation.
	first := make(chan int, 1)
	go func() {
		g, err := b.Reserve(context.Background(), Batch, 60)
		if err != nil {
			t.Error(err)
		}
		first <- g
	}()
	waitForQueue(t, b, 1)
	second := make(chan int, 1)
	go func() {
		g, err := b.Reserve(context.Background(), Batch, 10)
		if err != nil {
			t.Error(err)
		}
		second <- g
	}()
	waitForQueue(t, b, 2)
	select {
	case g := <-second:
		t.Fatalf("small request jumped the queue with grant %d", g)
	default:
	}
	b.Release(Batch, 60)
	if g := <-first; g != 60 {
		t.Fatalf("head grant = %d", g)
	}
	if g := <-second; g != 10 {
		t.Fatalf("second grant = %d", g)
	}
	b.Release(Batch, 60)
	b.Release(Batch, 10)
}

func TestSessionBrokerCancelWhileQueued(t *testing.T) {
	b := NewUnreservedBroker(10, 1, StaticShare)
	g, err := b.Reserve(context.Background(), Batch, 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Reserve(ctx, Batch, 5)
		done <- err
	}()
	waitForQueue(t, b, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("expected Canceled, got %v", err)
	}
	b.Release(Batch, g)
	if b.Granted() != 0 {
		t.Fatalf("granted = %d after full release", b.Granted())
	}
}

// TestBrokerNeverOverGrants hammers the broker from many goroutines with
// random explicit and policy-default requests and asserts the high-water
// mark of simultaneously granted pages never exceeds the budget.
func TestSessionBrokerNeverOverGrants(t *testing.T) {
	for _, policy := range []Policy{StaticShare, Greedy} {
		b := NewUnreservedBroker(64, 6, policy)
		var wg sync.WaitGroup
		for w := 0; w < 12; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < 200; i++ {
					want := 0
					if rng.Intn(2) == 0 {
						want = 2 + rng.Intn(40)
					}
					g, err := b.Reserve(context.Background(), Batch, want)
					if err != nil {
						t.Error(err)
						return
					}
					b.Release(Batch, g)
				}
			}()
		}
		wg.Wait()
		if b.Peak() > b.Total() {
			t.Fatalf("policy %v over-granted: peak %d > total %d", policy, b.Peak(), b.Total())
		}
		if b.Granted() != 0 {
			t.Fatalf("policy %v leaked %d pages", policy, b.Granted())
		}
	}
}

func waitForQueue(t *testing.T, b *Broker, n int) {
	t.Helper()
	waitFor(t, func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(b.queues[Batch]) == n
	})
}
