package session

import (
	"context"
	"sync/atomic"
)

// Grant is a live, revocable memory grant. Where Reserve hands back a
// plain page count fixed for the query's lifetime, a Grant can shrink
// mid-query: Revoke takes pages back (never below MinGrant) and returns
// them to the broker's pools immediately, waking eligible waiters. The
// running query observes the shrinkage through Pages — the hook the
// hybrid hash join's live-|M| consultation (join.Spec.LiveM) reads, so a
// revocation mid-build triggers the GRACE spill fallback instead of
// overcommitting memory.
//
// Pages is safe to call from operator hot loops (one atomic load);
// Revoke and Release are safe for concurrent use with each other and
// with Pages.
type Grant struct {
	b     *Broker
	class Class
	pages atomic.Int64 // current size; 0 once released
}

// ReserveGrant is Reserve returning a revocable Grant instead of a bare
// page count. The same admission rules apply: want == 0 requests the
// policy default, waiters queue FIFO within the class.
func (b *Broker) ReserveGrant(ctx context.Context, class Class, want int) (*Grant, error) {
	if !class.Valid() {
		class = Batch
	}
	n, err := b.Reserve(ctx, class, want)
	if err != nil {
		return nil, err
	}
	g := &Grant{b: b, class: class}
	g.pages.Store(int64(n))
	return g, nil
}

// Pages returns the grant's current size. Operators sizing buffers off a
// live grant must re-read it; the value can shrink between calls.
func (g *Grant) Pages() int { return int(g.pages.Load()) }

// Class returns the class the grant was drawn for.
func (g *Grant) Class() Class { return g.class }

// Revoke takes up to n pages back from the grant and returns them to the
// broker, reporting how many were actually reclaimed. The grant is never
// shrunk below MinGrant — a query holding a grant must always be able to
// finish — so the reclaimed count can be less than n, including zero.
func (g *Grant) Revoke(n int) int {
	if n <= 0 {
		return 0
	}
	for {
		cur := g.pages.Load()
		if cur <= MinGrant {
			return 0
		}
		take := int64(n)
		if cur-take < MinGrant {
			take = cur - MinGrant
		}
		if g.pages.CompareAndSwap(cur, cur-take) {
			g.b.Release(g.class, int(take))
			return int(take)
		}
	}
}

// Release returns the grant's remaining pages to the broker. Idempotent;
// Pages reports 0 afterwards.
func (g *Grant) Release() {
	if n := g.pages.Swap(0); n > 0 {
		g.b.Release(g.class, int(n))
	}
}
