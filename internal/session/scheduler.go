// Package session implements the concurrent query-serving layer: an
// admission scheduler that bounds how many queries execute at once, a
// memory broker that partitions the engine's |M| pages into per-query
// grants, and a concurrency façade over the §5.2 lock table.
//
// The paper's cost model (§3, §4) prices every operator against the pages
// of main memory it may use. Serving many queries at once therefore means
// |M| must be *brokered*: each admitted query receives a grant, plans and
// executes against that grant, and returns it on completion. The scheduler
// bounds concurrency (slots) and per-class queue depth so that overload
// degrades into FIFO queueing and then explicit rejection (ErrOverloaded)
// instead of memory thrash. Admission is multiclass: each Class has its
// own FIFO queue, and a freed slot is granted under StrictPriority
// (interactive ahead of batch) or WeightedFair (slot grants proportional
// to class weights) — so short interactive work is never stuck behind a
// backlog of bulk scans.
package session

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrOverloaded is returned when a query cannot even be queued: all
// execution slots are busy and its class's wait queue is at its
// configured depth. Concrete rejections are *OverloadError values that
// wrap this sentinel and carry the shedding class and depth.
var ErrOverloaded = errors.New("session: overloaded: admission queue full")

// ErrClosed is returned when admitting against a closed scheduler.
var ErrClosed = errors.New("session: scheduler closed")

// ClassMetrics counts one class's scheduler activity. Queued durations
// are wall-clock observations for operators; they never touch the
// virtual clock.
type ClassMetrics struct {
	Admitted    uint64        // queries granted a slot
	Rejected    uint64        // queries turned away with ErrOverloaded
	Canceled    uint64        // queries whose context ended while queued
	Completed   uint64        // slots released
	QueuedTotal time.Duration // total wall time spent waiting for a slot
	QueuedMax   time.Duration // longest single wait
	QueuePeak   int           // high-water mark of this class's wait queue
	Queued      Histogram     // queued-time distribution (log₂-µs buckets)
}

// Metrics is a snapshot of scheduler activity, per class plus the
// cross-class peaks.
type Metrics struct {
	PerClass    [NumClasses]ClassMetrics
	QueuePeak   int // high-water mark of total queued waiters, all classes
	RunningPeak int // high-water mark of concurrently running queries
}

// Total folds the per-class counters into one aggregate (histograms
// merged, maxima taken across classes).
func (m Metrics) Total() ClassMetrics {
	var t ClassMetrics
	for _, c := range m.PerClass {
		t.Admitted += c.Admitted
		t.Rejected += c.Rejected
		t.Canceled += c.Canceled
		t.Completed += c.Completed
		t.QueuedTotal += c.QueuedTotal
		if c.QueuedMax > t.QueuedMax {
			t.QueuedMax = c.QueuedMax
		}
		if c.QueuePeak > t.QueuePeak {
			t.QueuePeak = c.QueuePeak
		}
		t.Queued.Merge(c.Queued)
	}
	return t
}

// Scheduler is a multiclass admission controller: bounded execution
// slots shared by all classes, one bounded FIFO queue per class, and a
// configurable policy for which class a freed slot goes to. It is safe
// for concurrent use.
type Scheduler struct {
	slots  int
	policy PickPolicy
	depth  [NumClasses]int
	weight [NumClasses]int

	mu      sync.Mutex
	closed  bool
	running int
	queues  [NumClasses][]*admitWaiter
	served  [NumClasses]uint64 // slot grants, drives the WeightedFair pick
	m       Metrics
}

type admitWaiter struct {
	ready   chan struct{}
	granted bool // set under Scheduler.mu before ready is closed
}

// NewScheduler returns a scheduler with the given concurrency slots,
// pick policy and per-class limits. slots < 1 is treated as 1; negative
// queue depths mean no queue (reject as soon as the slots are busy);
// weights < 1 are clamped to 1.
func NewScheduler(slots int, policy PickPolicy, limits [NumClasses]ClassLimits) *Scheduler {
	if slots < 1 {
		slots = 1
	}
	s := &Scheduler{slots: slots, policy: policy}
	for c := 0; c < int(NumClasses); c++ {
		d := limits[c].QueueDepth
		if d < 0 {
			d = 0
		}
		s.depth[c] = d
		w := limits[c].Weight
		if w < 1 {
			w = 1
		}
		s.weight[c] = w
	}
	return s
}

// NewFIFOScheduler returns a single-class scheduler: every class shares
// the Batch queue semantics of the pre-multiclass engine (same depth and
// weight for all classes, strict policy — which degenerates to plain
// FIFO when only one class is used).
func NewFIFOScheduler(slots, depth int) *Scheduler {
	var limits [NumClasses]ClassLimits
	for c := range limits {
		limits[c] = ClassLimits{QueueDepth: depth, Weight: 1}
	}
	return NewScheduler(slots, StrictPriority, limits)
}

// Slots returns the configured concurrency bound.
func (s *Scheduler) Slots() int { return s.slots }

// Policy returns the slot-grant pick policy.
func (s *Scheduler) Policy() PickPolicy { return s.policy }

// ClassQueueDepth returns the configured wait-queue bound for c.
func (s *Scheduler) ClassQueueDepth(c Class) int { return s.depth[c] }

// ClassWeight returns the WeightedFair share for c.
func (s *Scheduler) ClassWeight(c Class) int { return s.weight[c] }

// Admit blocks until a slot is free, the context is done, or the class's
// queue is full (rejecting with an *OverloadError wrapping
// ErrOverloaded). Waiters are FIFO within a class; across classes the
// pick policy decides who gets a freed slot. It returns the wall time
// spent queued. Every successful Admit must be paired with exactly one
// Done for the same class.
func (s *Scheduler) Admit(ctx context.Context, class Class) (time.Duration, error) {
	if !class.Valid() {
		class = Batch
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	cm := &s.m.PerClass[class]
	if err := ctx.Err(); err != nil {
		cm.Canceled++
		s.mu.Unlock()
		return 0, err
	}
	if s.running < s.slots && s.totalQueuedLocked() == 0 {
		s.grantLocked(class)
		s.mu.Unlock()
		return 0, nil
	}
	if len(s.queues[class]) >= s.depth[class] {
		cm.Rejected++
		s.mu.Unlock()
		return 0, &OverloadError{Class: class, Depth: s.depth[class]}
	}
	w := &admitWaiter{ready: make(chan struct{})}
	s.queues[class] = append(s.queues[class], w)
	if n := len(s.queues[class]); n > cm.QueuePeak {
		cm.QueuePeak = n
	}
	if n := s.totalQueuedLocked(); n > s.m.QueuePeak {
		s.m.QueuePeak = n
	}
	s.mu.Unlock()

	start := time.Now()
	select {
	case <-w.ready:
		queued := time.Since(start)
		s.mu.Lock()
		s.observeQueuedLocked(class, queued)
		s.mu.Unlock()
		return queued, nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// The slot was handed to us concurrently with cancellation:
			// keep it — the caller still gets a usable admission, and the
			// context error surfaces on the next cancellation point.
			queued := time.Since(start)
			s.observeQueuedLocked(class, queued)
			s.mu.Unlock()
			return queued, nil
		}
		for i, q := range s.queues[class] {
			if q == w {
				s.queues[class] = append(s.queues[class][:i], s.queues[class][i+1:]...)
				break
			}
		}
		cm.Canceled++
		s.mu.Unlock()
		return time.Since(start), ctx.Err()
	}
}

// observeQueuedLocked records a completed wait in the class's counters
// and histogram.
func (s *Scheduler) observeQueuedLocked(class Class, queued time.Duration) {
	cm := &s.m.PerClass[class]
	cm.QueuedTotal += queued
	if queued > cm.QueuedMax {
		cm.QueuedMax = queued
	}
	cm.Queued.Observe(queued)
}

// grantLocked consumes a slot for class and updates the grant counters.
func (s *Scheduler) grantLocked(class Class) {
	s.running++
	s.served[class]++
	s.m.PerClass[class].Admitted++
	if s.running > s.m.RunningPeak {
		s.m.RunningPeak = s.running
	}
}

// totalQueuedLocked sums waiters across all class queues.
func (s *Scheduler) totalQueuedLocked() int {
	n := 0
	for c := range s.queues {
		n += len(s.queues[c])
	}
	return n
}

// pickLocked chooses which non-empty class queue the next freed slot
// goes to, or -1 when every queue is empty. StrictPriority takes the
// highest-priority (lowest-numbered) non-empty class; WeightedFair takes
// the non-empty class with the smallest served/weight ratio, which makes
// slot grants converge to the configured weight proportions whenever the
// losing classes stay backlogged.
func (s *Scheduler) pickLocked() Class {
	switch s.policy {
	case WeightedFair:
		best := Class(-1)
		for c := 0; c < int(NumClasses); c++ {
			if len(s.queues[c]) == 0 {
				continue
			}
			if best < 0 {
				best = Class(c)
				continue
			}
			// served[c]/weight[c] < served[best]/weight[best], compared by
			// cross-multiplication to stay in integers. Ties keep the
			// higher-priority (lower-numbered) class.
			if s.served[c]*uint64(s.weight[best]) < s.served[best]*uint64(s.weight[c]) {
				best = Class(c)
			}
		}
		return best
	default: // StrictPriority
		for c := 0; c < int(NumClasses); c++ {
			if len(s.queues[c]) > 0 {
				return Class(c)
			}
		}
		return -1
	}
}

// Done releases a slot held by class and grants freed capacity per the
// pick policy.
func (s *Scheduler) Done(class Class) {
	if !class.Valid() {
		class = Batch
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	s.m.PerClass[class].Completed++
	s.wakeLocked()
}

// wakeLocked grants slots to picked queue heads while capacity remains.
func (s *Scheduler) wakeLocked() {
	for s.running < s.slots {
		c := s.pickLocked()
		if c < 0 {
			return
		}
		w := s.queues[c][0]
		s.queues[c] = s.queues[c][1:]
		s.grantLocked(c)
		w.granted = true
		close(w.ready)
	}
}

// Close rejects all future admissions. Queued waiters are left to drain
// normally as running queries complete.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// Metrics returns a snapshot of scheduler activity.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m
}

// Running returns the number of currently executing queries.
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Queued returns the number of queries waiting for a slot, all classes.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalQueuedLocked()
}

// QueuedClass returns the number of class-c queries waiting for a slot.
func (s *Scheduler) QueuedClass(c Class) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !c.Valid() {
		return 0
	}
	return len(s.queues[c])
}
