// Package session implements the concurrent query-serving layer: an
// admission scheduler that bounds how many queries execute at once, a
// memory broker that partitions the engine's |M| pages into per-query
// grants, and a concurrency façade over the §5.2 lock table.
//
// The paper's cost model (§3, §4) prices every operator against the pages
// of main memory it may use. Serving many queries at once therefore means
// |M| must be *brokered*: each admitted query receives a grant, plans and
// executes against that grant, and returns it on completion. The scheduler
// bounds concurrency (slots) and queue depth so that overload degrades
// into FIFO queueing and then explicit rejection (ErrOverloaded) instead
// of memory thrash.
package session

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrOverloaded is returned when a query cannot even be queued: all
// execution slots are busy and the wait queue is at its configured depth.
var ErrOverloaded = errors.New("session: overloaded: admission queue full")

// ErrClosed is returned when admitting against a closed scheduler.
var ErrClosed = errors.New("session: scheduler closed")

// Metrics counts scheduler activity. Queued durations are wall-clock
// observations for operators; they never touch the virtual clock.
type Metrics struct {
	Admitted    uint64        // queries granted a slot
	Rejected    uint64        // queries turned away with ErrOverloaded
	Canceled    uint64        // queries whose context ended while queued
	Completed   uint64        // slots released
	QueuedTotal time.Duration // total wall time spent waiting for a slot
	QueuedMax   time.Duration // longest single wait
	QueuePeak   int           // high-water mark of the wait queue
	RunningPeak int           // high-water mark of concurrently running queries
}

// Scheduler is a FIFO admission controller with bounded slots and a
// bounded wait queue. It is safe for concurrent use.
type Scheduler struct {
	slots int
	depth int

	mu      sync.Mutex
	closed  bool
	running int
	queue   []*admitWaiter
	m       Metrics
}

type admitWaiter struct {
	ready   chan struct{}
	granted bool // set under Scheduler.mu before ready is closed
}

// NewScheduler returns a scheduler with the given concurrency slots and
// wait-queue depth. slots < 1 is treated as 1. depth < 0 means no queue
// (reject as soon as the slots are busy); depth == 0 is also a valid
// no-queue configuration — callers wanting a default should pass one
// explicitly.
func NewScheduler(slots, depth int) *Scheduler {
	if slots < 1 {
		slots = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &Scheduler{slots: slots, depth: depth}
}

// Slots returns the configured concurrency bound.
func (s *Scheduler) Slots() int { return s.slots }

// QueueDepth returns the configured wait-queue bound.
func (s *Scheduler) QueueDepth() int { return s.depth }

// Admit blocks until a slot is free (FIFO among waiters), the context is
// done, or the queue is full. It returns the wall time spent queued. Every
// successful Admit must be paired with exactly one Done.
func (s *Scheduler) Admit(ctx context.Context) (time.Duration, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		s.m.Canceled++
		s.mu.Unlock()
		return 0, err
	}
	if s.running < s.slots && len(s.queue) == 0 {
		s.running++
		s.m.Admitted++
		if s.running > s.m.RunningPeak {
			s.m.RunningPeak = s.running
		}
		s.mu.Unlock()
		return 0, nil
	}
	if len(s.queue) >= s.depth {
		s.m.Rejected++
		s.mu.Unlock()
		return 0, ErrOverloaded
	}
	w := &admitWaiter{ready: make(chan struct{})}
	s.queue = append(s.queue, w)
	if len(s.queue) > s.m.QueuePeak {
		s.m.QueuePeak = len(s.queue)
	}
	s.mu.Unlock()

	start := time.Now()
	select {
	case <-w.ready:
		queued := time.Since(start)
		s.mu.Lock()
		s.m.QueuedTotal += queued
		if queued > s.m.QueuedMax {
			s.m.QueuedMax = queued
		}
		s.mu.Unlock()
		return queued, nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// The slot was handed to us concurrently with cancellation:
			// keep it — the caller still gets a usable admission, and the
			// context error surfaces on the next cancellation point.
			queued := time.Since(start)
			s.m.QueuedTotal += queued
			if queued > s.m.QueuedMax {
				s.m.QueuedMax = queued
			}
			s.mu.Unlock()
			return queued, nil
		}
		for i, q := range s.queue {
			if q == w {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.m.Canceled++
		s.mu.Unlock()
		return time.Since(start), ctx.Err()
	}
}

// Done releases a slot and wakes the head of the wait queue.
func (s *Scheduler) Done() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	s.m.Completed++
	s.wakeLocked()
}

// wakeLocked grants slots to queue heads while capacity remains.
func (s *Scheduler) wakeLocked() {
	for s.running < s.slots && len(s.queue) > 0 {
		w := s.queue[0]
		s.queue = s.queue[1:]
		s.running++
		s.m.Admitted++
		if s.running > s.m.RunningPeak {
			s.m.RunningPeak = s.running
		}
		w.granted = true
		close(w.ready)
	}
}

// Close rejects all future admissions. Queued waiters are left to drain
// normally as running queries complete.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// Metrics returns a snapshot of scheduler activity.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m
}

// Running returns the number of currently executing queries.
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Queued returns the number of queries waiting for a slot.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}
